//! The self-check: the committed workspace must lint clean, including
//! warnings — the same gate `ci.sh` enforces with `--deny-warnings`.

use std::path::Path;

use dt_lint::{find_root, load_config, run, Stats};

#[test]
fn committed_workspace_has_no_findings() {
    let root = find_root(Path::new(env!("CARGO_MANIFEST_DIR"))).expect("lint.toml above the crate");
    let config = load_config(&root).expect("committed lint.toml parses");
    let report = run(&root, &config).expect("workspace walk succeeds");
    assert!(
        !report.fails(true),
        "workspace must lint clean under --deny-warnings:\n{}",
        report.human()
    );
    // Sanity: the walk actually visited the workspace, not an empty dir.
    assert!(
        report.files_scanned > 50,
        "suspiciously few files scanned: {}",
        report.files_scanned
    );
    // Every configured entry point must resolve (unmatched ones produce
    // findings, caught above), and the R10 closure must be almost fully
    // resolved — below this floor the "hot paths are allocation-free"
    // claim would rest on calls the linter could not see through.
    assert_eq!(report.stats.entry_points, config.r10_entry_points.len());
    assert!(report.stats.closure_fns >= report.stats.entry_points);
    let ratio = Stats::resolved_ratio(report.stats.closure_calls);
    assert!(
        ratio >= 0.95,
        "hot-closure resolved-call ratio {ratio:.4} fell below 0.95 \
         (calls: {:?})",
        report.stats.closure_calls
    );
}
