//! R8 fixture: sanctioned parallel closures — closure-local accumulators,
//! per-slot writes, and an annotated order-independent lock. No findings.

pub fn blocked_sum(data: &[f64], out: &mut [f64]) {
    dt_parallel::for_each_chunk(out, 64, |ci, chunk| {
        let mut local = 0.0;
        for (k, slot) in chunk.iter_mut().enumerate() {
            local += data[ci * 64 + k];
            *slot = local;
        }
    });
}

pub fn per_slot_writes(n: usize, out: &mut [f64]) {
    dt_parallel::par_indices(n, |i| {
        out[i] = i as f64;
    });
}

pub fn annotated_slot_merge(n: usize, slots: &std::sync::Mutex<Vec<f64>>) {
    dt_parallel::par_indices(n, |i| {
        // lint: allow(r8): per-slot writes at distinct indices are order-independent
        let mut guard = slots.lock();
        guard[i] = i as f64;
    });
}
