// R7 fixture: direct fresh allocations in an allocation hot path, no
// pool/alloc-ok annotation. Both calls must fire.

fn output_buffer(r: usize, c: usize) -> Tensor {
    Tensor::zeros(r, c)
}

fn materialize(r: usize, c: usize, data: Vec<f64>) -> Tensor {
    Tensor::from_vec(r, c, data)
}
