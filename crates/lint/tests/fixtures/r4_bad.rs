// Fixture: nondeterminism sources (R4 positive case).
pub fn entropy() -> f64 {
    let mut rng = rand::thread_rng();
    let alt = rand::rngs::StdRng::from_entropy();
    let _ = alt;
    rng.gen()
}

pub fn stamp() -> std::time::Instant {
    std::time::Instant::now()
}

pub fn epoch() -> std::time::SystemTime {
    std::time::SystemTime::now()
}
