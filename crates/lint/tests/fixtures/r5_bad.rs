// Fixture: console printing from library code (R5 positive case).
pub fn report(x: f64) {
    println!("value = {x}");
    eprintln!("progress");
}
