// Fixture: explicit seeding keeps runs reproducible (R4 negative case).
pub fn seeded(seed: u64) -> f64 {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    rng.gen()
}

pub fn telemetry() -> std::time::Instant {
    std::time::Instant::now() // lint: allow(r4): wall-time telemetry only
}
