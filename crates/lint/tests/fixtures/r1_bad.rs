// Fixture: `unsafe` outside the audited modules (R1 positive case).
pub fn peek(v: &[u8]) -> u8 {
    unsafe { *v.get_unchecked(0) }
}
