// Fixture: cited, crate-private, and waived functions all pass (R6
// negative case).

/// The IPS estimator of eq. (3).
#[must_use]
pub fn cited(x: f64) -> f64 {
    x * 2.0
}

/// Implements Lemma 2's bias decomposition.
pub fn cited_lemma(x: f64) -> f64 {
    x + 1.0
}

/// Crate-private helpers carry no citation duty.
pub(crate) fn internal(x: f64) -> f64 {
    x
}

/// Plain accessor.
// lint: allow(r6): accessor, no paper construct to cite
pub fn accessor(x: f64) -> f64 {
    x
}
