// Fixture: parallelism through the shared pool (R2 negative case).
pub fn fan_out(xs: &mut [f64]) {
    dt_parallel::for_each_chunk(xs, 4, |_, chunk| {
        for v in chunk {
            *v += 1.0;
        }
    });
}
