// Fixture: ad-hoc threading outside dt-parallel (R2 positive case).
use std::thread;

pub fn fan_out() {
    let h = thread::spawn(|| 1 + 1);
    let b = std::thread::Builder::new();
    let _ = (h.join(), b);
}
