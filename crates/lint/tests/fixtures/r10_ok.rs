//! R10 fixture: the same call shape as `r10_bad.rs`, kept clean with
//! pooled buffers, `assert!` contract checks, and one annotated cold
//! allocation. No findings.

pub struct Engine;

impl Engine {
    pub fn hot_entry(&self, n: usize) -> f64 {
        assert!(n > 0, "contract checks stay sanctioned");
        pooled_stage(n)
    }
}

fn pooled_stage(n: usize) -> f64 {
    let buf = crate::pool::take_zeroed(n);
    // alloc-ok: cold diagnostic labels, built once per process
    let names = Vec::with_capacity(n);
    keep(names);
    let s = buf[0];
    crate::pool::recycle(buf);
    s
}

fn keep(_v: Vec<String>) {}
