// Fixture: safe indexing needs no waiver anywhere (R1 negative case).
pub fn peek(v: &[u8]) -> u8 {
    v[0]
}
