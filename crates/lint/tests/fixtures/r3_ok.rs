// Fixture: the sanctioned alternatives (R3 negative case).
pub fn first(xs: &[f64]) -> Option<f64> {
    xs.first().copied()
}

pub fn head(xs: &[f64]) -> f64 {
    // lint: allow(r3): documented invariant — callers guarantee non-empty
    *xs.first().expect("non-empty by contract")
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_in_tests() {
        let xs = [1.0];
        assert_eq!(*xs.first().unwrap(), 1.0);
    }
}
