// Fixture: public estimator APIs without a paper citation (R6 positive
// case): one undocumented, one documented without naming any construct.
pub fn undocumented(x: f64) -> f64 {
    x * 2.0
}

/// Doubles the input.
#[must_use]
pub fn documented_but_uncited(x: f64) -> f64 {
    x * 2.0
}
