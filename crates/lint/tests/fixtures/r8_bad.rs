//! R8 fixture: parallel closures whose merge order depends on thread
//! interleaving. Every function here must produce a finding.

pub fn captured_accumulator(rows: usize, data: &[f64], out: &mut [f64]) {
    let mut total = 0.0;
    dt_parallel::par_rows(rows, |r| {
        total += data[r];
    });
    out[0] = total;
}

pub fn locked_merge(n: usize, slots: &std::sync::Mutex<Vec<f64>>) {
    dt_parallel::par_indices(n, |i| {
        let mut guard = slots.lock();
        guard[i] = i as f64;
    });
}

pub fn atomic_reduction(n: usize, hits: &std::sync::atomic::AtomicUsize) {
    dt_parallel::par_indices(n, |_i| {
        hits.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    });
}
