// R7 fixture: the sanctioned patterns — pooled constructors, annotated
// fresh allocations, and test scopes. Must stay silent in a hot path.

fn pooled_output(r: usize, c: usize) -> Tensor {
    Tensor::pooled_zeros(r, c)
}

fn accumulator(r: usize, c: usize) -> Tensor {
    // pool: accumulating kernel output must start zeroed; recycled with the tape
    Tensor::zeros(r, c)
}

fn cold_path(r: usize, c: usize, data: Vec<f64>) -> Tensor {
    Tensor::from_vec(r, c, data) // alloc-ok: once per process, outlives every step
}

#[cfg(test)]
mod tests {
    fn scratch() -> Tensor {
        Tensor::zeros(2, 2)
    }
}
