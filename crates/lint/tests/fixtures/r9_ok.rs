//! R9 fixture: every exit path recycles, returns, or moves the pooled
//! buffer — plus one justified waiver. No findings.

pub struct Scratch {
    pub buf: Vec<f64>,
    pub n: usize,
}

pub fn both_branches(flag: bool, n: usize) -> f64 {
    let buf = crate::pool::take_zeroed(n);
    let s;
    if flag {
        s = buf[0];
        crate::pool::recycle(buf);
    } else {
        s = 1.0;
        crate::pool::recycle(buf);
    }
    s
}

pub fn returned_to_caller(n: usize) -> Vec<f64> {
    let buf = crate::pool::take(n);
    buf
}

pub fn moved_into_struct(n: usize) -> Scratch {
    let buf = crate::pool::take(n);
    Scratch { buf, n }
}

pub fn recycle_after_loop(m: usize, n: usize) {
    let mut acc = crate::pool::take_zeroed(n);
    let mut i = 0;
    while i < m {
        acc[i % n] += 1.0;
        i += 1;
    }
    crate::pool::recycle(acc);
}

pub fn annotated_cache(n: usize) -> usize {
    // lint: allow(r9): buffer parked in a process-lifetime cache, drained at exit
    let buf = crate::pool::take(n);
    buf.capacity()
}
