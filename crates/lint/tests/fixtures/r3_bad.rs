// Fixture: panicking shortcuts in library code (R3 positive case).
pub fn first(xs: &[f64]) -> f64 {
    *xs.first().unwrap()
}

pub fn parse(s: &str) -> f64 {
    s.parse().expect("numeric")
}

pub fn boom() {
    panic!("unconditional");
}
