//! R10 fixture: allocation and panic paths two resolved calls below the
//! declared entry point `Engine::hot_entry`. Both must be denied with a
//! call-chain witness.

pub struct Engine;

impl Engine {
    pub fn hot_entry(&self, n: usize) -> f64 {
        let s = stage_one(n);
        s + 1.0
    }
}

fn stage_one(n: usize) -> f64 {
    stage_two(n)
}

fn stage_two(n: usize) -> f64 {
    let v = vec![0.0; n];
    let head = v.first().unwrap();
    *head
}
