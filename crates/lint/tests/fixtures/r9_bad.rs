//! R9 fixture: pooled buffers leaking on at least one exit path. Every
//! function here must produce a finding.

pub fn leak_on_early_return(flag: bool, n: usize) -> f64 {
    let buf = crate::pool::take(n);
    if flag {
        return 0.0;
    }
    let s = buf[0];
    crate::pool::recycle(buf);
    s
}

pub fn leak_one_branch(flag: bool, n: usize) {
    let buf = crate::pool::take_zeroed(n);
    if flag {
        crate::pool::recycle(buf);
    }
}

pub fn never_recycled(n: usize) -> usize {
    let buf = crate::pool::take(n);
    buf.len()
}
