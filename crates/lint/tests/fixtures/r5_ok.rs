// Fixture: stderr writes through Write are reviewable telemetry, and the
// format macro name in a string ("println!") must not trip the token scan
// (R5 negative case).
use std::io::Write as _;

pub fn report(x: f64) {
    let _ = writeln!(std::io::stderr(), "value = {x} (not println!)");
}
