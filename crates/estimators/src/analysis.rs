//! Exact bias analysis: the expectations of the estimators over the
//! missingness realisation, computable because the generators expose the
//! true propensities.
//!
//! This module turns the paper's Table I into a measurement. Conditioning
//! on the realized ratings (which is the relevant conditioning — ratings
//! are drawn first, then the mechanism decides what is observed):
//!
//! * `E[IPS] = (1/|D|) Σ p·e/p̂` where `p = P(o=1|x,r)` is the true MNAR
//!   propensity and `p̂` the propensity the estimator *uses*;
//! * `E[DR]  = (1/|D|) Σ [ê + p·(e − ê)/p̂]`;
//! * `E[naive] ≈ Σ p·e / Σ p` (ratio-of-expectations approximation, exact
//!   as `|D| → ∞`).
//!
//! Lemma 1 (unbiasedness under accurate propensities), Lemma 2(a) (IPS/DR
//! biased under MNAR with the MAR propensity) and Lemma 2(b) (unbiased
//! with the MNAR propensity) all become assertions on these quantities —
//! see the tests.

use dt_data::{Dataset, GroundTruth};
use dt_tensor::Tensor;

use crate::estimator::ideal;

/// Which propensity a (hypothetical) estimator plugs in — the rows of the
/// paper's Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PropensityKind {
    /// The constant `P(o = 1)`.
    Mcar,
    /// The feature-only `P(o = 1 | x)`.
    Mar,
    /// The full `P(o = 1 | x, r)`.
    Mnar,
}

impl PropensityKind {
    /// All three kinds, in Table I order.
    pub const ALL: [PropensityKind; 3] = [
        PropensityKind::Mcar,
        PropensityKind::Mar,
        PropensityKind::Mnar,
    ];

    /// Display label, as used for the Table I row headings.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            PropensityKind::Mcar => "MCAR propensity P(o=1)",
            PropensityKind::Mar => "MAR propensity P(o=1|x)",
            PropensityKind::Mnar => "MNAR propensity P(o=1|x,r)",
        }
    }

    /// Extracts the corresponding oracle propensity matrix — the MCAR /
    /// MAR / MNAR mechanisms contrasted in Table I of the paper.
    #[must_use]
    pub fn oracle(&self, truth: &GroundTruth) -> Tensor {
        match self {
            PropensityKind::Mcar => {
                let mean = truth.propensity_xr.mean();
                Tensor::full(truth.propensity_xr.rows(), truth.propensity_xr.cols(), mean)
            }
            PropensityKind::Mar => truth.propensity_x.clone(),
            PropensityKind::Mnar => truth.propensity_xr.clone(),
        }
    }
}

/// `E[IPS]` of the IPS estimator (eq. (3)) over the missingness realisation.
#[must_use]
pub fn expected_ips(errors: &Tensor, true_prop: &Tensor, used_prop: &Tensor) -> f64 {
    errors.mul(true_prop).div(used_prop).mean()
}

/// `E[DR]` of the DR estimator (eq. (4)) over the missingness realisation.
#[must_use]
pub fn expected_dr(
    errors: &Tensor,
    true_prop: &Tensor,
    used_prop: &Tensor,
    imputed: &Tensor,
) -> f64 {
    let corr = errors.sub(imputed).mul(true_prop).div(used_prop);
    imputed.add(&corr).mean()
}

/// `E[naive]` of the naive estimator (eq. (2)), as a ratio-of-expectations
/// approximation.
#[must_use]
pub fn expected_naive(errors: &Tensor, true_prop: &Tensor) -> f64 {
    errors.mul(true_prop).sum() / true_prop.sum()
}

/// Bias `|E[IPS] − ideal|` of the IPS estimator (eq. (3)) against the ideal
/// loss (eq. (1)).
#[must_use]
pub fn bias_of_ips(errors: &Tensor, true_prop: &Tensor, used_prop: &Tensor) -> f64 {
    (expected_ips(errors, true_prop, used_prop) - ideal(errors)).abs()
}

/// Bias `|E[DR] − ideal|` of the DR estimator (eq. (4)) against the ideal
/// loss (eq. (1)).
#[must_use]
pub fn bias_of_dr(
    errors: &Tensor,
    true_prop: &Tensor,
    used_prop: &Tensor,
    imputed: &Tensor,
) -> f64 {
    (expected_dr(errors, true_prop, used_prop, imputed) - ideal(errors)).abs()
}

/// Bias `|E[naive] − ideal|` of the naive estimator (eq. (2)) against the
/// ideal loss (eq. (1)).
#[must_use]
pub fn bias_of_naive(errors: &Tensor, true_prop: &Tensor) -> f64 {
    (expected_naive(errors, true_prop) - ideal(errors)).abs()
}

/// The Table I grid: IPS bias for every propensity kind on one dataset.
#[derive(Debug, Clone)]
pub struct BiasGrid {
    /// `(kind, |bias|, relative bias)` per row.
    pub rows: Vec<(PropensityKind, f64, f64)>,
    /// The ideal loss the biases are measured against.
    pub ideal_loss: f64,
}

impl BiasGrid {
    /// Computes the Table I bias grid for a generated dataset, using squared
    /// error of a supplied prediction matrix against the realized ratings.
    ///
    /// # Panics
    /// Panics when the dataset has no ground truth.
    #[must_use]
    pub fn compute(ds: &Dataset, predictions: &Tensor) -> Self {
        let truth = ds
            .truth
            .as_ref()
            // lint: allow(r3): documented `# Panics` contract on `compute`
            .expect("BiasGrid: dataset has no ground truth");
        let errors = predictions.sub(&truth.ratings).map(|d| d * d);
        let ideal_loss = ideal(&errors);
        let rows = PropensityKind::ALL
            .iter()
            .map(|kind| {
                let used = kind.oracle(truth);
                let bias = bias_of_ips(&errors, &truth.propensity_xr, &used);
                (*kind, bias, bias / ideal_loss.abs().max(1e-12))
            })
            .collect();
        Self { rows, ideal_loss }
    }

    /// Whether the given propensity kind yields (near-)unbiasedness at a
    /// relative tolerance — the ✓/✗ verdicts of Table I (Lemmas 1–2).
    #[must_use]
    pub fn is_unbiased(&self, kind: PropensityKind, rel_tol: f64) -> bool {
        self.rows
            .iter()
            .find(|(k, _, _)| *k == kind)
            .map(|(_, _, rel)| *rel < rel_tol)
            // lint: allow(r3): `rows` is built from `PropensityKind::ALL`, so every kind is present
            .expect("kind always present")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimator::{dr, ips};
    use dt_data::{mechanism_dataset, Mechanism, MechanismConfig};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn dataset(mech: Mechanism) -> Dataset {
        mechanism_dataset(
            mech,
            &MechanismConfig {
                n_users: 100,
                n_items: 150,
                target_density: 0.1,
                feature_effect: 1.2,
                rating_effect: 2.0,
                seed: 21,
                ..MechanismConfig::default()
            },
        )
    }

    /// A fixed, imperfect prediction matrix whose errors correlate with the
    /// ratings (as any real model's errors do).
    fn predictions(ds: &Dataset) -> Tensor {
        let t = ds.truth.as_ref().unwrap();
        t.preference.map(|p| 0.8 * p + 0.1)
    }

    #[test]
    fn lemma1_ips_unbiased_under_mar_with_true_propensity() {
        let ds = dataset(Mechanism::Mar);
        let grid = BiasGrid::compute(&ds, &predictions(&ds));
        assert!(grid.is_unbiased(PropensityKind::Mar, 1e-9));
        assert!(grid.is_unbiased(PropensityKind::Mnar, 1e-9));
        assert!(!grid.is_unbiased(PropensityKind::Mcar, 0.01));
    }

    #[test]
    fn lemma2a_mar_propensity_biased_under_mnar() {
        let ds = dataset(Mechanism::Mnar);
        let grid = BiasGrid::compute(&ds, &predictions(&ds));
        assert!(
            !grid.is_unbiased(PropensityKind::Mar, 0.01),
            "MAR propensity must be biased under MNAR: {:?}",
            grid.rows
        );
        assert!(!grid.is_unbiased(PropensityKind::Mcar, 0.01));
    }

    #[test]
    fn lemma2b_mnar_propensity_unbiased_under_mnar() {
        let ds = dataset(Mechanism::Mnar);
        let grid = BiasGrid::compute(&ds, &predictions(&ds));
        assert!(grid.is_unbiased(PropensityKind::Mnar, 1e-9));
    }

    #[test]
    fn mcar_everything_is_unbiased() {
        let ds = dataset(Mechanism::Mcar);
        let grid = BiasGrid::compute(&ds, &predictions(&ds));
        for kind in PropensityKind::ALL {
            assert!(grid.is_unbiased(kind, 1e-9), "{kind:?} under MCAR");
        }
    }

    #[test]
    fn dr_bias_vanishes_with_accurate_imputation_even_under_mnar() {
        // Lemma 1's DR clause, stressed under MNAR with a *wrong*
        // propensity but perfect imputation.
        let ds = dataset(Mechanism::Mnar);
        let truth = ds.truth.as_ref().unwrap();
        let errors = predictions(&ds).sub(&truth.ratings).map(|d| d * d);
        let wrong_prop = PropensityKind::Mar.oracle(truth);
        let bias = bias_of_dr(&errors, &truth.propensity_xr, &wrong_prop, &errors);
        assert!(bias < 1e-12);
    }

    #[test]
    fn naive_estimator_is_biased_under_mnar() {
        let ds = dataset(Mechanism::Mnar);
        let truth = ds.truth.as_ref().unwrap();
        let errors = predictions(&ds).sub(&truth.ratings).map(|d| d * d);
        let rel = bias_of_naive(&errors, &truth.propensity_xr) / ideal(&errors);
        assert!(rel > 0.05, "relative naive bias {rel}");
    }

    #[test]
    fn monte_carlo_agrees_with_closed_form() {
        // Sample many missingness realisations and check the empirical mean
        // of the IPS estimator converges to expected_ips.
        let ds = dataset(Mechanism::Mnar);
        let truth = ds.truth.as_ref().unwrap();
        let errors = predictions(&ds).sub(&truth.ratings).map(|d| d * d);
        let used = PropensityKind::Mar.oracle(truth);
        let expected = expected_ips(&errors, &truth.propensity_xr, &used);

        let mut rng = StdRng::seed_from_u64(0);
        let n_trials = 60;
        let mut sum_ips = 0.0;
        let mut sum_dr = 0.0;
        let imputed = Tensor::full(errors.rows(), errors.cols(), 0.05);
        for _ in 0..n_trials {
            let o = Tensor::from_fn(errors.rows(), errors.cols(), |i, j| {
                f64::from(rng.gen::<f64>() < truth.propensity_xr.get(i, j))
            });
            sum_ips += ips(&errors, &o, &used);
            sum_dr += dr(&errors, &o, &used, &imputed);
        }
        let mc_ips = sum_ips / n_trials as f64;
        assert!(
            (mc_ips - expected).abs() < 0.01,
            "MC {mc_ips} vs closed form {expected}"
        );
        let expected_dr_v = expected_dr(&errors, &truth.propensity_xr, &used, &imputed);
        let mc_dr = sum_dr / n_trials as f64;
        assert!((mc_dr - expected_dr_v).abs() < 0.01);
    }
}

// ---------------------------------------------------------------------------
// Estimator variance (the MRDR / Stable-DR motivation, measured)
// ---------------------------------------------------------------------------

/// Exact variance of the IPS estimator (eq. (3)) over the missingness
/// realisation: with independent `o ~ Bern(p)`,
/// `Var[IPS] = (1/|D|²) Σ p(1−p)·(e/p̂)²`.
#[must_use]
pub fn variance_of_ips(errors: &Tensor, true_prop: &Tensor, used_prop: &Tensor) -> f64 {
    let n = errors.len() as f64;
    let term = errors
        .div(used_prop)
        .map(|v| v * v)
        .mul(&true_prop.zip_map(true_prop, |p, _| p * (1.0 - p)));
    term.sum() / (n * n)
}

/// Exact variance of the DR estimator (eq. (4)): only the correction term
/// is random, so `Var[DR] = (1/|D|²) Σ p(1−p)·((e − ê)/p̂)²`.
#[must_use]
pub fn variance_of_dr(
    errors: &Tensor,
    true_prop: &Tensor,
    used_prop: &Tensor,
    imputed: &Tensor,
) -> f64 {
    let n = errors.len() as f64;
    let term = errors
        .sub(imputed)
        .div(used_prop)
        .map(|v| v * v)
        .mul(&true_prop.zip_map(true_prop, |p, _| p * (1.0 - p)));
    term.sum() / (n * n)
}

#[cfg(test)]
mod variance_tests {
    use super::*;
    use crate::estimator::ips;
    use dt_data::{mechanism_dataset, Mechanism, MechanismConfig};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn setup() -> (Tensor, Tensor) {
        let ds = mechanism_dataset(
            Mechanism::Mnar,
            &MechanismConfig {
                n_users: 60,
                n_items: 80,
                target_density: 0.1,
                seed: 31,
                ..MechanismConfig::default()
            },
        );
        let truth = ds.truth.unwrap();
        let errors = truth
            .preference
            .map(|p| 0.8 * p + 0.1)
            .sub(&truth.ratings)
            .map(|d| d * d);
        (errors, truth.propensity_xr)
    }

    #[test]
    fn monte_carlo_confirms_the_variance_formula() {
        let (errors, prop) = setup();
        let analytic = variance_of_ips(&errors, &prop, &prop);
        let mut rng = StdRng::seed_from_u64(1);
        let n_trials = 400;
        let samples: Vec<f64> = (0..n_trials)
            .map(|_| {
                let o = Tensor::from_fn(errors.rows(), errors.cols(), |i, j| {
                    f64::from(rng.gen::<f64>() < prop.get(i, j))
                });
                ips(&errors, &o, &prop)
            })
            .collect();
        let mean = samples.iter().sum::<f64>() / n_trials as f64;
        let var =
            samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / (n_trials - 1) as f64;
        assert!(
            (var - analytic).abs() / analytic < 0.25,
            "MC var {var:.3e} vs analytic {analytic:.3e}"
        );
    }

    #[test]
    fn good_imputation_reduces_dr_variance_below_ips() {
        // The DR motivation: an imputation correlated with the errors
        // shrinks the random correction term.
        let (errors, prop) = setup();
        let v_ips = variance_of_ips(&errors, &prop, &prop);
        let imputed = errors.scale(0.8); // 80%-accurate imputation
        let v_dr = variance_of_dr(&errors, &prop, &prop, &imputed);
        assert!(
            v_dr < 0.1 * v_ips,
            "DR variance {v_dr:.3e} should be far below IPS {v_ips:.3e}"
        );
        // A useless (zero) imputation recovers the IPS variance exactly.
        let zero = Tensor::zeros(errors.rows(), errors.cols());
        let v_dr0 = variance_of_dr(&errors, &prop, &prop, &zero);
        assert!((v_dr0 - v_ips).abs() < 1e-15);
    }

    #[test]
    fn clipping_trades_bias_for_variance() {
        // The classical trade-off: raising the clip floor lowers variance
        // but introduces bias.
        let (errors, prop) = setup();
        let clipped = prop.clamp(0.3, 1.0);
        let v_raw = variance_of_ips(&errors, &prop, &prop);
        let v_clip = variance_of_ips(&errors, &prop, &clipped);
        assert!(v_clip < v_raw, "clipping must cut variance");
        let bias_clip = bias_of_ips(&errors, &prop, &clipped);
        assert!(bias_clip > 1e-3, "clipping must introduce bias");
    }
}
