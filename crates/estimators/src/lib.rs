//! # dt-estimators
//!
//! The loss estimators of the paper's §II–III — ideal, naive, IPS, SNIPS,
//! clipped IPS and DR — together with an *exact* bias analysis: because the
//! generators in `dt-data` expose oracle propensities, the expectation of
//! each estimator over the missingness realisation can be computed in
//! closed form, turning Lemmas 1–2 and Table I into measurable facts
//! rather than theory.
//!
//! ## The estimators
//!
//! With prediction errors `e`, observation indicators `o`, and estimated
//! propensities `p̂` (all over the full space `D`):
//!
//! * ideal: `(1/|D|) Σ e`
//! * naive: `(1/|O|) Σ_O e`
//! * IPS: `(1/|D|) Σ o·e/p̂`
//! * SNIPS: `Σ o·e/p̂ / Σ o/p̂`
//! * DR: `(1/|D|) Σ [ê + o·(e − ê)/p̂]`

#![forbid(unsafe_code)]

mod analysis;
mod estimator;

pub use analysis::{
    bias_of_dr, bias_of_ips, bias_of_naive, expected_dr, expected_ips, expected_naive,
    variance_of_dr, variance_of_ips, BiasGrid, PropensityKind,
};
pub use estimator::{dr, ideal, ips, ips_clipped, naive, snips};
