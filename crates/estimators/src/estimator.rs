//! Point estimators computed from one realized missingness pattern.

use dt_tensor::Tensor;

fn check_shapes(name: &str, a: &Tensor, b: &Tensor) {
    assert_eq!(
        a.shape(),
        b.shape(),
        "{name}: shape mismatch {} vs {}",
        a.shape(),
        b.shape()
    );
}

/// The ideal (full-information) loss `(1/|D|) Σ e` of eq. (1).
///
/// # Panics
/// Panics on an empty tensor.
#[must_use]
pub fn ideal(errors: &Tensor) -> f64 {
    errors.mean()
}

/// The naive estimator `(1/|O|) Σ_O e` of eq. (2).
///
/// # Panics
/// Panics when nothing is observed.
#[must_use]
pub fn naive(errors: &Tensor, observed: &Tensor) -> f64 {
    check_shapes("naive", errors, observed);
    let n_obs = observed.sum();
    assert!(n_obs > 0.0, "naive: no observed entries");
    errors.mul(observed).sum() / n_obs
}

/// The IPS estimator `(1/|D|) Σ o·e/p̂` of eq. (3).
#[must_use]
pub fn ips(errors: &Tensor, observed: &Tensor, propensities: &Tensor) -> f64 {
    check_shapes("ips", errors, observed);
    check_shapes("ips", errors, propensities);
    errors.mul(observed).div(propensities).mean()
}

/// The IPS estimator of eq. (3) with propensity clipping `max(p̂, clip)` —
/// the standard variance-control device.
///
/// # Panics
/// Panics when `clip` is not positive.
#[must_use]
pub fn ips_clipped(errors: &Tensor, observed: &Tensor, propensities: &Tensor, clip: f64) -> f64 {
    assert!(clip > 0.0, "ips_clipped: clip must be positive");
    ips(errors, observed, &propensities.clamp(clip, f64::INFINITY))
}

/// The self-normalised variant `Σ(o·e/p̂) / Σ(o/p̂)` of the IPS estimator
/// of eq. (3).
///
/// # Panics
/// Panics when nothing is observed.
#[must_use]
pub fn snips(errors: &Tensor, observed: &Tensor, propensities: &Tensor) -> f64 {
    check_shapes("snips", errors, observed);
    check_shapes("snips", errors, propensities);
    let w = observed.div(propensities);
    let den = w.sum();
    assert!(den > 0.0, "snips: no observed entries");
    errors.mul(&w).sum() / den
}

/// The doubly robust estimator `(1/|D|) Σ [ê + o·(e − ê)/p̂]` of eq. (4).
#[must_use]
pub fn dr(errors: &Tensor, observed: &Tensor, propensities: &Tensor, imputed: &Tensor) -> f64 {
    check_shapes("dr", errors, observed);
    check_shapes("dr", errors, propensities);
    check_shapes("dr", errors, imputed);
    let correction = errors.sub(imputed).mul(observed).div(propensities);
    imputed.add(&correction).mean()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixtures() -> (Tensor, Tensor, Tensor) {
        let e = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let o = Tensor::from_rows(&[&[1.0, 0.0], &[1.0, 0.0]]);
        let p = Tensor::from_rows(&[&[0.5, 0.5], &[0.25, 0.25]]);
        (e, o, p)
    }

    #[test]
    fn ideal_and_naive_values() {
        let (e, o, _) = fixtures();
        assert_eq!(ideal(&e), 2.5);
        assert_eq!(naive(&e, &o), 2.0);
    }

    #[test]
    fn ips_known_value() {
        let (e, o, p) = fixtures();
        // (1/0.5 + 3/0.25) / 4 = (2 + 12)/4 = 3.5
        assert_eq!(ips(&e, &o, &p), 3.5);
    }

    #[test]
    fn snips_known_value() {
        let (e, o, p) = fixtures();
        // weights: 2 and 4; Σ w e = 2 + 12 = 14; Σ w = 6 → 14/6
        assert!((snips(&e, &o, &p) - 14.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn clipping_caps_small_propensities() {
        let (e, o, mut p) = fixtures();
        p.set(1, 0, 1e-6);
        let unclipped = ips(&e, &o, &p);
        let clipped = ips_clipped(&e, &o, &p, 0.25);
        assert!(unclipped > 1e5);
        assert_eq!(clipped, 3.5);
    }

    #[test]
    fn dr_with_perfect_imputation_equals_ideal() {
        let (e, o, p) = fixtures();
        // ê = e → correction term vanishes → mean(e) regardless of p̂.
        assert_eq!(dr(&e, &o, &p, &e), ideal(&e));
    }

    #[test]
    fn dr_with_perfect_propensity_is_ips_like() {
        let (e, o, p) = fixtures();
        let imputed = Tensor::zeros(2, 2);
        // With ê = 0, DR reduces to IPS.
        assert_eq!(dr(&e, &o, &p, &imputed), ips(&e, &o, &p));
    }

    #[test]
    fn full_observation_makes_everything_ideal() {
        let e = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let o = Tensor::ones(2, 2);
        let p = Tensor::ones(2, 2);
        assert_eq!(naive(&e, &o), ideal(&e));
        assert_eq!(ips(&e, &o, &p), ideal(&e));
        assert_eq!(snips(&e, &o, &p), ideal(&e));
    }

    #[test]
    #[should_panic(expected = "no observed entries")]
    fn naive_without_observations_panics() {
        let e = Tensor::ones(1, 2);
        let o = Tensor::zeros(1, 2);
        let _ = naive(&e, &o);
    }
}
