//! Std-only serving-path tests (the offline verification shim runs this
//! file verbatim): the engine against a full-sort oracle, bit-identity
//! across `DT_NUM_THREADS` 1/2/8, and pooled-vs-fresh equivalence. The
//! `proptest` coverage of the selection kernel lives in `topk_props.rs`.

use dt_serve::{Ranked, ScoringIndex, SeenLists, TopKEngine};
use dt_tensor::{reference, Tensor};

/// Deterministic xorshift64* stream, as in the bench emitters.
struct XorShift(u64);

impl XorShift {
    fn next_f64(&mut self) -> f64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        (self.0.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64 / (1u64 << 53) as f64 - 0.5
    }

    fn next_below(&mut self, n: usize) -> usize {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        (self.0.wrapping_mul(0x2545_F491_4F6C_DD1D) % n as u64) as usize
    }
}

fn random_index(n_users: usize, n_items: usize, dim: usize, seed: u64) -> ScoringIndex {
    let mut rng = XorShift(seed | 1);
    let p = Tensor::from_fn(n_users, dim, |_, _| rng.next_f64());
    let q = Tensor::from_fn(n_items, dim, |_, _| rng.next_f64());
    let ub: Vec<f64> = (0..n_users).map(|_| rng.next_f64()).collect();
    let ib: Vec<f64> = (0..n_items).map(|_| rng.next_f64()).collect();
    let mu = rng.next_f64();
    ScoringIndex::new(p, q, ub, ib, mu)
}

fn random_seen(n_users: usize, n_items: usize, per_user: usize, seed: u64) -> SeenLists {
    let mut rng = XorShift(seed | 1);
    let mut pairs = Vec::new();
    for u in 0..n_users {
        for _ in 0..rng.next_below(per_user + 1) {
            pairs.push((u as u32, rng.next_below(n_items) as u32));
        }
    }
    SeenLists::from_pairs(n_users, pairs)
}

/// The oracle: score one user against the catalog via the *pair* kernel
/// (bit-identical to the block kernel by the scoring-module contract),
/// then full-sort with `reference::top_k_by_sort`.
fn oracle_top_k(index: &ScoringIndex, user: usize, k: usize, seen: &[u32]) -> Vec<Ranked> {
    let n = index.n_items();
    let block = index.score_block(&[user]);
    let scores = block.row(0).to_vec();
    block.recycle();
    assert_eq!(scores.len(), n);
    reference::top_k_by_sort(&scores, k, seen)
}

#[test]
fn engine_matches_full_sort_oracle() {
    let (n_users, n_items) = (23, 311);
    let index = random_index(n_users, n_items, 7, 0x5EED);
    let seen = random_seen(n_users, n_items, 40, 0xFACE);
    let users: Vec<usize> = (0..60).map(|j| (j * 13) % n_users).collect();
    for k in [1, 5, 97, 311, 400] {
        let batch = TopKEngine::new().recommend(&index, &users, k, Some(&seen));
        for (j, &u) in users.iter().enumerate() {
            let want = oracle_top_k(&index, u, k, seen.seen(u));
            let got = batch.user(j);
            assert_eq!(got.len(), want.len(), "k={k} user={u}");
            for (g, w) in got.iter().zip(&want) {
                assert_eq!(g.item, w.item, "k={k} user={u}");
                assert_eq!(g.score.to_bits(), w.score.to_bits(), "k={k} user={u}");
            }
        }
    }
}

#[test]
fn duplicate_scores_break_ties_by_item_id() {
    // A rank-0 index: every item scores identically for every user.
    let p = Tensor::zeros(3, 2);
    let q = Tensor::zeros(50, 2);
    let index = ScoringIndex::new(p, q, vec![0.0; 3], vec![0.25; 50], 1.0);
    let batch = TopKEngine::new().recommend(&index, &[2, 0], 4, None);
    for j in 0..2 {
        let items: Vec<u32> = batch.user(j).iter().map(|r| r.item).collect();
        assert_eq!(items, vec![0, 1, 2, 3]);
    }
}

#[test]
fn excluding_the_whole_catalog_empties_a_user() {
    let index = random_index(4, 12, 3, 9);
    let all: Vec<(u32, u32)> = (0..12).map(|i| (1u32, i)).collect();
    let seen = SeenLists::from_pairs(4, all);
    let batch = TopKEngine::new().recommend(&index, &[0, 1], 5, Some(&seen));
    assert_eq!(batch.user(0).len(), 5);
    assert!(batch.user(1).is_empty());
}

#[test]
fn results_are_bit_identical_across_thread_widths() {
    let (n_users, n_items) = (31, 257);
    let index = random_index(n_users, n_items, 9, 0xA11CE);
    let seen = random_seen(n_users, n_items, 20, 0xB0B);
    let users: Vec<usize> = (0..48).map(|j| (j * 7) % n_users).collect();
    let engine = TopKEngine::new();
    let baseline =
        dt_parallel::with_thread_limit(1, || engine.recommend(&index, &users, 10, Some(&seen)));
    for width in [2, 8] {
        let wide = dt_parallel::with_thread_limit(width, || {
            engine.recommend(&index, &users, 10, Some(&seen))
        });
        assert_eq!(wide.n_users(), baseline.n_users(), "width {width}");
        for j in 0..users.len() {
            let (a, b) = (baseline.user(j), wide.user(j));
            assert_eq!(a.len(), b.len(), "width {width} user-slot {j}");
            for (x, y) in a.iter().zip(b) {
                assert_eq!(x.item, y.item, "width {width} user-slot {j}");
                assert_eq!(
                    x.score.to_bits(),
                    y.score.to_bits(),
                    "width {width} user-slot {j}"
                );
            }
        }
    }
}

#[test]
fn pooled_and_fresh_buffers_agree_bitwise() {
    let index = random_index(17, 129, 6, 0xDECADE);
    let users: Vec<usize> = (0..30).map(|j| (j * 5) % 17).collect();
    let engine = TopKEngine::new();
    let pooled = engine.recommend(&index, &users, 7, None);
    let fresh = dt_tensor::pool::with_disabled(|| engine.recommend(&index, &users, 7, None));
    assert_eq!(pooled, fresh);
}

#[test]
fn reused_batch_matches_fresh_batch_after_shape_changes() {
    let index = random_index(9, 40, 4, 0x77);
    let engine = TopKEngine::new();
    let mut reused = dt_serve::TopKBatch::new();
    // Fill with one geometry, then a different one: stale state must not leak.
    engine.recommend_into(&index, &[0, 1, 2, 3, 4], 11, None, &mut reused);
    engine.recommend_into(&index, &[8, 8, 3], 2, None, &mut reused);
    let fresh = engine.recommend(&index, &[8, 8, 3], 2, None);
    assert_eq!(reused, fresh);
}

#[test]
fn batch_scores_are_the_block_scores() {
    // The entries a batch reports carry exactly the raw block logits, and
    // block geometry (one GEMM vs one user per GEMM) never changes them.
    let index = random_index(5, 33, 8, 0x1234);
    let block = index.score_block(&[4, 0]);
    let split = TopKEngine::with_block_elems(1).recommend(&index, &[4, 0], 33, None);
    let whole = TopKEngine::new().recommend(&index, &[4, 0], 33, None);
    assert_eq!(split, whole);
    for row in [0usize, 1] {
        assert_eq!(whole.user(row).len(), 33);
        for r in whole.user(row) {
            assert_eq!(r.score.to_bits(), block.row(row)[r.item as usize].to_bits());
        }
    }
    block.recycle();
}
