//! Property tests: the bounded-heap partial selection against the
//! full-sort oracle (ties, duplicate scores, K ≥ M, empty inputs,
//! exclusions), and the batched engine against per-user selection.
//!
//! Needs the `proptest` crate, so this file only compiles in the full
//! workspace; the offline shim covers the same ground with the
//! deterministic randomized sweeps in `serve_oracle.rs`.

use proptest::prelude::*;

use dt_serve::{Ranked, ScoringIndex, SeenLists, TopKEngine};
use dt_tensor::topk::select_top_k;
use dt_tensor::{reference, Tensor};

fn select(scores: &[f64], k: usize, exclude: &[u32]) -> Vec<Ranked> {
    let mut out = vec![Ranked::TOMBSTONE; k];
    let n = select_top_k(scores, exclude, &mut out);
    assert!(out[n..].iter().all(Ranked::is_tombstone));
    out.truncate(n);
    out
}

proptest! {
    /// Continuous scores: arbitrary K (including 0 and K ≥ M) and an
    /// arbitrary exclusion set must reproduce the sort oracle exactly.
    #[test]
    fn selection_matches_sort_oracle(
        scores in prop::collection::vec(-1.0f64..1.0, 0..200),
        k in 0usize..260,
        mut exclude in prop::collection::vec(0u32..220, 0..50),
    ) {
        exclude.sort_unstable();
        let got = select(&scores, k, &exclude);
        let want = reference::top_k_by_sort(&scores, k, &exclude);
        prop_assert_eq!(got, want);
    }

    /// Tie-heavy scores drawn from a three-value alphabet: duplicate
    /// scores must break by ascending item id, exactly as the stable
    /// full sort does.
    #[test]
    fn ties_and_duplicates_match_sort_oracle(
        scores in prop::collection::vec(prop::sample::select(vec![0.0f64, 0.5, 1.0]), 0..150),
        k in 0usize..170,
    ) {
        let got = select(&scores, k, &[]);
        let want = reference::top_k_by_sort(&scores, k, &[]);
        prop_assert_eq!(got, want);
    }

    /// The blocked engine equals independent per-user selection over the
    /// same block scores, for random shapes, queries and seen-lists.
    #[test]
    fn engine_matches_per_user_selection(
        n_users in 1usize..8,
        n_items in 1usize..40,
        dim in 1usize..5,
        k in 0usize..45,
        values in prop::collection::vec(-1.0f64..1.0, 400),
        query in prop::collection::vec(0usize..8, 0..12),
        seen_raw in prop::collection::vec((0usize..8, 0u32..40), 0..30),
    ) {
        let mut it = values.into_iter();
        let mut next = move || it.next().unwrap_or(0.37);
        let p = Tensor::from_fn(n_users, dim, |_, _| next());
        let q = Tensor::from_fn(n_items, dim, |_, _| next());
        let ub: Vec<f64> = (0..n_users).map(|_| next()).collect();
        let ib: Vec<f64> = (0..n_items).map(|_| next()).collect();
        let index = ScoringIndex::new(p, q, ub, ib, next());
        let seen = SeenLists::from_pairs(
            n_users,
            seen_raw
                .into_iter()
                .filter(|&(u, i)| u < n_users && (i as usize) < n_items)
                .map(|(u, i)| (u as u32, i)),
        );
        let users: Vec<usize> = query.into_iter().filter(|&u| u < n_users).collect();
        let batch = TopKEngine::new().recommend(&index, &users, k, Some(&seen));
        prop_assert_eq!(batch.n_users(), users.len());
        for (j, &u) in users.iter().enumerate() {
            let block = index.score_block(&[u]);
            let want = select(block.row(0), k, seen.seen(u));
            block.recycle();
            prop_assert_eq!(batch.user(j), &want[..]);
        }
    }
}
