//! Property tests for the IVF coarse quantizer: k-means bit-identity
//! across thread widths and pooled-vs-fresh buffers, and the IVF arm
//! against the `top_k_by_sort` oracle on the probed candidate set.
//!
//! Needs the `proptest` crate, so this file only compiles in the full
//! workspace; the offline shim covers the same ground with the
//! deterministic randomized sweeps in `ivf_oracle.rs`.

use proptest::prelude::*;

use dt_serve::kmeans::{self, KmeansConfig};
use dt_serve::{IvfIndex, IvfParams, IvfScratch, ScoringIndex, SeenLists, TopKBatch, TopKEngine};
use dt_tensor::{reference, Tensor};

fn tensor_from(values: &[f64], rows: usize, cols: usize, fill: f64) -> Tensor {
    Tensor::from_fn(rows, cols, |i, j| {
        values.get(i * cols + j).copied().unwrap_or(fill)
    })
}

proptest! {
    /// Same seed + shapes ⇒ identical centroids and assignments at
    /// widths 1, 2 and 8, and with the buffer pool disabled entirely.
    #[test]
    fn kmeans_is_bit_identical_across_widths_and_pools(
        rows in 1usize..120,
        cols in 1usize..6,
        k in 1usize..20,
        iters in 1usize..5,
        seed in any::<u64>(),
        values in prop::collection::vec(-1.0f64..1.0, 600),
    ) {
        let panel = tensor_from(&values, rows, cols, 0.41);
        let cfg = KmeansConfig { k, iters, seed, train_cap: 0 };
        let base = dt_parallel::with_thread_limit(1, || kmeans::run(&panel, &cfg));
        for width in [2usize, 8] {
            let wide = dt_parallel::with_thread_limit(width, || kmeans::run(&panel, &cfg));
            prop_assert_eq!(&base.centroids, &wide.centroids, "width {}", width);
            prop_assert_eq!(&base.assignments, &wide.assignments, "width {}", width);
        }
        let fresh = dt_tensor::pool::with_disabled(|| kmeans::run(&panel, &cfg));
        prop_assert_eq!(&base.centroids, &fresh.centroids);
        prop_assert_eq!(&base.assignments, &fresh.assignments);
    }

    /// The IVF arm equals `top_k_by_sort` restricted to the probed
    /// candidate set (reconstructed independently from the public cell
    /// API), for random shapes, probes and seen-lists — and is
    /// width-independent end to end.
    #[test]
    fn ivf_matches_sort_oracle_on_probed_candidates(
        n_users in 1usize..6,
        n_items in 1usize..60,
        dim in 1usize..4,
        nlist in 1usize..10,
        nprobe in 1usize..12,
        k in 0usize..20,
        values in prop::collection::vec(-1.0f64..1.0, 500),
        seen_raw in prop::collection::vec((0usize..6, 0u32..60), 0..25),
    ) {
        let mut it = values.iter().copied();
        let mut next = move || it.next().unwrap_or(0.23);
        let p = Tensor::from_fn(n_users, dim, |_, _| next());
        let q = Tensor::from_fn(n_items, dim, |_, _| next());
        let ub: Vec<f64> = (0..n_users).map(|_| next()).collect();
        let ib: Vec<f64> = (0..n_items).map(|_| next()).collect();
        let index = ScoringIndex::new(p, q, ub, ib, next());
        let seen = SeenLists::from_pairs(
            n_users,
            seen_raw
                .into_iter()
                .filter(|&(u, i)| u < n_users && (i as usize) < n_items)
                .map(|(u, i)| (u as u32, i)),
        );
        let ivf = IvfIndex::build(
            &index,
            &IvfParams { nlist, iters: 3, seed: 11, train_cap: 0 },
        );
        let users: Vec<usize> = (0..n_users).collect();

        let run = || {
            let mut out = TopKBatch::new();
            let mut scratch = IvfScratch::default();
            TopKEngine::new().recommend_ivf_into(
                &index, &ivf, nprobe, &users, k, Some(&seen), &mut scratch, &mut out,
            );
            out
        };
        let batch = dt_parallel::with_thread_limit(1, run);
        let wide = dt_parallel::with_thread_limit(8, run);

        for (j, &u) in users.iter().enumerate() {
            prop_assert_eq!(batch.user(j), wide.user(j), "width mismatch, user {}", u);

            // Reconstruct the probed candidate set: rank cells by
            // centroid score, widen on shortfall exactly as documented.
            let aff = dt_tensor::scoring::score_user_block(
                index.user_panel(), ivf.centroids(), &[u], None,
            );
            let cell_scores: Vec<f64> = aff
                .row(0)
                .iter()
                .zip(ivf.centroid_bias())
                .map(|(a, b)| a + b)
                .collect();
            aff.recycle();
            let nl = ivf.nlist();
            let mut probe = nprobe.clamp(1, nl);
            let cand: Vec<u32> = loop {
                let cells = reference::top_k_by_sort(&cell_scores, probe, &[]);
                let mut cand: Vec<u32> = cells
                    .iter()
                    .flat_map(|c| ivf.cell(c.item as usize).iter().copied())
                    .filter(|i| seen.seen(u).binary_search(i).is_err())
                    .collect();
                cand.sort_unstable();
                if cand.len() >= k || probe == nl {
                    break cand;
                }
                probe = (probe * 2).min(nl);
            };

            // Oracle: full-sort the candidate set by its exact block
            // scores (exclude = the catalog minus the candidates).
            let block = index.score_block(&[u]);
            let mut exclude: Vec<u32> = (0..n_items as u32)
                .filter(|i| cand.binary_search(i).is_err())
                .collect();
            exclude.sort_unstable();
            let want = reference::top_k_by_sort(block.row(0), k, &exclude);
            block.recycle();
            if k > 0 {
                prop_assert_eq!(batch.user(j), &want[..], "user {}", u);
            }
        }
    }
}
