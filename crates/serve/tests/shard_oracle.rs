//! Sharded-vs-unsharded oracle (std-only; the offline verification shim
//! runs this file verbatim): `recommend_sharded_into` must be bitwise
//! equal to the unsharded engine for every shard count, K, thread width
//! and buffer mode — the bit-identity contract DESIGN.md section 16
//! leans on when the load harness serves the sharded arm concurrently.

use dt_serve::{ScoringIndex, SeenLists, ShardScratch, TopKBatch, TopKEngine};
use dt_tensor::Tensor;

/// Deterministic xorshift64* stream, as in the bench emitters.
struct XorShift(u64);

impl XorShift {
    fn next_f64(&mut self) -> f64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        (self.0.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64 / (1u64 << 53) as f64 - 0.5
    }

    fn next_below(&mut self, n: usize) -> usize {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        (self.0.wrapping_mul(0x2545_F491_4F6C_DD1D) % n as u64) as usize
    }
}

fn random_index(n_users: usize, n_items: usize, dim: usize, seed: u64) -> ScoringIndex {
    let mut rng = XorShift(seed | 1);
    let p = Tensor::from_fn(n_users, dim, |_, _| rng.next_f64());
    let q = Tensor::from_fn(n_items, dim, |_, _| rng.next_f64());
    let ub: Vec<f64> = (0..n_users).map(|_| rng.next_f64()).collect();
    let ib: Vec<f64> = (0..n_items).map(|_| rng.next_f64()).collect();
    let mu = rng.next_f64();
    ScoringIndex::new(p, q, ub, ib, mu)
}

fn random_seen(n_users: usize, n_items: usize, per_user: usize, seed: u64) -> SeenLists {
    let mut rng = XorShift(seed | 1);
    let mut pairs = Vec::new();
    for u in 0..n_users {
        for _ in 0..rng.next_below(per_user + 1) {
            pairs.push((u as u32, rng.next_below(n_items) as u32));
        }
    }
    SeenLists::from_pairs(n_users, pairs)
}

fn assert_bitwise_eq(a: &TopKBatch, b: &TopKBatch, ctx: &str) {
    assert_eq!(a.n_users(), b.n_users(), "{ctx}");
    for j in 0..a.n_users() {
        let (x, y) = (a.user(j), b.user(j));
        assert_eq!(x.len(), y.len(), "{ctx} user-slot {j}");
        for (r, s) in x.iter().zip(y) {
            assert_eq!(r.item, s.item, "{ctx} user-slot {j}");
            assert_eq!(r.score.to_bits(), s.score.to_bits(), "{ctx} user-slot {j}");
        }
    }
}

#[test]
fn sharded_matches_unsharded_across_shards_and_k() {
    let (n_users, n_items) = (29, 463);
    let index = random_index(n_users, n_items, 7, 0x5AAD);
    let seen = random_seen(n_users, n_items, 35, 0xFACE);
    let users: Vec<usize> = (0..57).map(|j| (j * 11) % n_users).collect();
    let engine = TopKEngine::new();
    let mut scratch = ShardScratch::default();
    let mut sharded = TopKBatch::new();
    for k in [1usize, 10, 50] {
        let want = engine.recommend(&index, &users, k, Some(&seen));
        for n_shards in [1usize, 2, 7, 16] {
            engine.recommend_sharded_into(
                &index,
                n_shards,
                &users,
                k,
                Some(&seen),
                &mut scratch,
                &mut sharded,
            );
            assert_bitwise_eq(&sharded, &want, &format!("S={n_shards} k={k}"));
        }
    }
}

#[test]
fn sharded_is_bit_identical_across_thread_widths() {
    let (n_users, n_items) = (19, 301);
    let index = random_index(n_users, n_items, 9, 0xA11CE);
    let seen = random_seen(n_users, n_items, 25, 0xB0B);
    let users: Vec<usize> = (0..40).map(|j| (j * 7) % n_users).collect();
    let engine = TopKEngine::new();
    let baseline = dt_parallel::with_thread_limit(1, || {
        engine.recommend_sharded(&index, 7, &users, 10, Some(&seen))
    });
    let unsharded =
        dt_parallel::with_thread_limit(1, || engine.recommend(&index, &users, 10, Some(&seen)));
    assert_bitwise_eq(&baseline, &unsharded, "width 1 vs unsharded");
    for width in [2usize, 8] {
        let wide = dt_parallel::with_thread_limit(width, || {
            engine.recommend_sharded(&index, 7, &users, 10, Some(&seen))
        });
        assert_bitwise_eq(&wide, &baseline, &format!("width {width}"));
    }
}

#[test]
fn pooled_and_fresh_buffers_agree_bitwise() {
    let index = random_index(13, 157, 6, 0xDECADE);
    let users: Vec<usize> = (0..24).map(|j| (j * 5) % 13).collect();
    let engine = TopKEngine::new();
    let pooled = engine.recommend_sharded(&index, 7, &users, 9, None);
    let fresh =
        dt_tensor::pool::with_disabled(|| engine.recommend_sharded(&index, 7, &users, 9, None));
    assert_eq!(pooled, fresh);
}

#[test]
fn more_shards_than_items_still_exact() {
    // Empty tail shards must contribute nothing, not corrupt the merge.
    let index = random_index(5, 11, 3, 0x77);
    let engine = TopKEngine::new();
    let want = engine.recommend(&index, &[0, 4, 2], 11, None);
    let got = engine.recommend_sharded(&index, 16, &[0, 4, 2], 11, None);
    assert_bitwise_eq(&got, &want, "S=16 > M=11");
}

#[test]
fn duplicate_scores_break_ties_by_item_id() {
    // Rank-0 index: every item ties; the merged tie-break must equal the
    // global item-id order regardless of which shard offered the item.
    let p = Tensor::zeros(3, 2);
    let q = Tensor::zeros(50, 2);
    let index = ScoringIndex::new(p, q, vec![0.0; 3], vec![0.25; 50], 1.0);
    let batch = TopKEngine::new().recommend_sharded(&index, 7, &[2, 0], 6, None);
    for j in 0..2 {
        let items: Vec<u32> = batch.user(j).iter().map(|r| r.item).collect();
        assert_eq!(items, vec![0, 1, 2, 3, 4, 5]);
    }
}

#[test]
fn reused_scratch_and_batch_match_fresh_after_shape_changes() {
    let index = random_index(9, 83, 4, 0x99);
    let engine = TopKEngine::new();
    let mut scratch = ShardScratch::default();
    let mut reused = TopKBatch::new();
    // Fill with one geometry, then a different one: stale state must not leak.
    engine.recommend_sharded_into(
        &index,
        5,
        &[0, 1, 2, 3, 4],
        13,
        None,
        &mut scratch,
        &mut reused,
    );
    engine.recommend_sharded_into(&index, 3, &[8, 8, 3], 2, None, &mut scratch, &mut reused);
    let fresh = engine.recommend_sharded(&index, 3, &[8, 8, 3], 2, None);
    assert_eq!(reused, fresh);
}

#[test]
fn excluding_the_whole_catalog_empties_a_user() {
    let index = random_index(4, 12, 3, 9);
    let all: Vec<(u32, u32)> = (0..12).map(|i| (1u32, i)).collect();
    let seen = SeenLists::from_pairs(4, all);
    let batch = TopKEngine::new().recommend_sharded(&index, 5, &[0, 1], 5, Some(&seen));
    assert_eq!(batch.user(0).len(), 5);
    assert!(batch.user(1).is_empty());
}

#[test]
fn tiny_block_budget_matches_one_shot() {
    // Forcing one user per block exercises the block loop + stripe merge.
    let index = random_index(11, 97, 5, 0x1234);
    let users: Vec<usize> = (0..17).map(|j| (j * 3) % 11).collect();
    let split = TopKEngine::with_block_elems(1).recommend_sharded(&index, 4, &users, 8, None);
    let whole = TopKEngine::new().recommend_sharded(&index, 4, &users, 8, None);
    assert_eq!(split, whole);
}

#[test]
fn k_zero_and_empty_users_are_clean() {
    let index = random_index(3, 10, 2, 5);
    let engine = TopKEngine::new();
    let empty_k = engine.recommend_sharded(&index, 4, &[0, 1], 0, None);
    assert_eq!(empty_k.n_users(), 2);
    assert!(empty_k.user(0).is_empty());
    let no_users = engine.recommend_sharded(&index, 4, &[], 5, None);
    assert_eq!(no_users.n_users(), 0);
}
