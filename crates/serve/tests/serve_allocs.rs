//! Steady-state allocation discipline: after a warm-up query, repeated
//! batches through a reused `TopKBatch` must take every pooled buffer
//! from the free lists — zero fresh allocations per query batch.
//!
//! Lives in its own integration-test binary because the pool counters are
//! process-global: sibling tests running on other harness threads would
//! pollute the deltas.

use dt_serve::{ScoringIndex, SeenLists, TopKBatch, TopKEngine};
use dt_tensor::{pool, Tensor};

#[test]
fn steady_state_queries_allocate_nothing() {
    let (n_users, n_items, dim) = (64, 4096, 16);
    let mut state = 0x9E37_79B9u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64 / (1u64 << 53) as f64 - 0.5
    };
    let p = Tensor::from_fn(n_users, dim, |_, _| next());
    let q = Tensor::from_fn(n_items, dim, |_, _| next());
    let index = ScoringIndex::new(
        p,
        q,
        vec![0.01; n_users],
        vec![-0.01; n_items],
        0.5,
    );
    let seen = SeenLists::from_pairs(n_users, (0..n_users as u32).map(|u| (u, u * 3)));
    let users: Vec<usize> = (0..48).map(|j| (j * 5) % n_users).collect();

    let engine = TopKEngine::new();
    let mut batch = TopKBatch::new();
    // Warm-up: first call populates the pool's free lists and grows the
    // batch buffers to their steady-state capacity.
    engine.recommend_into(&index, &users, 10, Some(&seen), &mut batch);

    let before = pool::stats();
    for _ in 0..5 {
        engine.recommend_into(&index, &users, 10, Some(&seen), &mut batch);
    }
    let after = pool::stats();
    assert_eq!(
        after.fresh_allocs - before.fresh_allocs,
        0,
        "steady-state query batches must not allocate (stats {after:?} vs {before:?})"
    );
    assert!(
        after.pool_hits > before.pool_hits,
        "queries should be served from the free lists"
    );
}
