//! Steady-state allocation discipline: after a warm-up query, repeated
//! batches through a reused `TopKBatch` must take every pooled buffer
//! from the free lists — zero fresh allocations per query batch.
//!
//! Lives in its own integration-test binary because the pool counters are
//! process-global; the tests here additionally serialize on a mutex so
//! their stat deltas never interleave.

use std::sync::Mutex;

use dt_serve::{
    IvfIndex, IvfParams, IvfScratch, PanelDtype, QuantScratch, ScoringIndex, SeenLists, TopKBatch,
    TopKEngine,
};
use dt_tensor::{pool, Tensor};

/// Serializes the pool-stat probes: the counters are process-global, so
/// the exact and IVF tests must not run concurrently.
static STATS_LOCK: Mutex<()> = Mutex::new(());

fn build_index(n_users: usize, n_items: usize, dim: usize) -> ScoringIndex {
    let mut state = 0x9E37_79B9u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64 / (1u64 << 53) as f64 - 0.5
    };
    let p = Tensor::from_fn(n_users, dim, |_, _| next());
    let q = Tensor::from_fn(n_items, dim, |_, _| next());
    ScoringIndex::new(p, q, vec![0.01; n_users], vec![-0.01; n_items], 0.5)
}

#[test]
fn steady_state_queries_allocate_nothing() {
    let guard = STATS_LOCK.lock().unwrap();
    let (n_users, n_items) = (64, 4096);
    let index = build_index(n_users, n_items, 16);
    let seen = SeenLists::from_pairs(n_users, (0..n_users as u32).map(|u| (u, u * 3)));
    let users: Vec<usize> = (0..48).map(|j| (j * 5) % n_users).collect();

    let engine = TopKEngine::new();
    let mut batch = TopKBatch::new();
    // Warm-up: first call populates the pool's free lists and grows the
    // batch buffers to their steady-state capacity.
    engine.recommend_into(&index, &users, 10, Some(&seen), &mut batch);

    let before = pool::stats();
    for _ in 0..5 {
        engine.recommend_into(&index, &users, 10, Some(&seen), &mut batch);
    }
    let after = pool::stats();
    assert_eq!(
        after.fresh_allocs - before.fresh_allocs,
        0,
        "steady-state query batches must not allocate (stats {after:?} vs {before:?})"
    );
    assert!(
        after.pool_hits > before.pool_hits,
        "queries should be served from the free lists"
    );
    drop(guard);
}

#[test]
fn steady_state_quantized_queries_allocate_nothing() {
    let guard = STATS_LOCK.lock().unwrap();
    let (n_users, n_items) = (64, 4096);
    let index = build_index(n_users, n_items, 16);
    let seen = SeenLists::from_pairs(n_users, (0..n_users as u32).map(|u| (u, u * 3)));
    let users: Vec<usize> = (0..48).map(|j| (j * 5) % n_users).collect();
    let ivf = IvfIndex::build(
        &index,
        &IvfParams {
            nlist: 32,
            iters: 4,
            seed: 3,
            train_cap: 0,
        },
    );

    let engine = TopKEngine::new();
    for dtype in [PanelDtype::F64, PanelDtype::F32, PanelDtype::ScaledI8] {
        // Quantization is the cold path; it runs before the probe.
        let qidx = index.quantize(dtype);
        let mut batch = TopKBatch::new();
        let mut scratch = QuantScratch::default();
        // Warm-up grows the partial grid, the IVF scratch, the refine
        // buffers and the batch to steady-state capacity.
        engine.recommend_quantized_into(
            &qidx,
            &users,
            10,
            Some(&seen),
            Some(&index),
            &mut scratch,
            &mut batch,
        );
        engine.recommend_ivf_quantized_into(
            &qidx,
            &ivf,
            4,
            &users,
            10,
            Some(&seen),
            Some(&index),
            &mut scratch,
            &mut batch,
        );

        let before = pool::stats();
        for _ in 0..5 {
            engine.recommend_quantized_into(
                &qidx,
                &users,
                10,
                Some(&seen),
                Some(&index),
                &mut scratch,
                &mut batch,
            );
            engine.recommend_ivf_quantized_into(
                &qidx,
                &ivf,
                4,
                &users,
                10,
                Some(&seen),
                Some(&index),
                &mut scratch,
                &mut batch,
            );
        }
        let after = pool::stats();
        assert_eq!(
            after.fresh_allocs - before.fresh_allocs,
            0,
            "steady-state quantized batches must not allocate ({})",
            dtype.label()
        );
    }
    drop(guard);
}

#[test]
fn steady_state_ivf_queries_allocate_nothing() {
    let guard = STATS_LOCK.lock().unwrap();
    let (n_users, n_items) = (64, 4096);
    let index = build_index(n_users, n_items, 16);
    let seen = SeenLists::from_pairs(n_users, (0..n_users as u32).map(|u| (u, u * 5)));
    let users: Vec<usize> = (0..48).map(|j| (j * 7) % n_users).collect();
    // Build is a cold path and may allocate; it happens before the probe.
    let ivf = IvfIndex::build(
        &index,
        &IvfParams {
            nlist: 32,
            iters: 4,
            seed: 3,
            train_cap: 0,
        },
    );

    let engine = TopKEngine::new();
    let mut batch = TopKBatch::new();
    let mut scratch = IvfScratch::default();
    // Warm-up grows the scratch vectors to steady-state capacity. Probe
    // width 4 exercises the gather + rerank path, not the exact fallback.
    engine.recommend_ivf_into(
        &index,
        &ivf,
        4,
        &users,
        10,
        Some(&seen),
        &mut scratch,
        &mut batch,
    );

    let before = pool::stats();
    for _ in 0..5 {
        engine.recommend_ivf_into(
            &index,
            &ivf,
            4,
            &users,
            10,
            Some(&seen),
            &mut scratch,
            &mut batch,
        );
    }
    let after = pool::stats();
    assert_eq!(
        after.fresh_allocs - before.fresh_allocs,
        0,
        "steady-state IVF batches must not allocate (stats {after:?} vs {before:?})"
    );
    assert!(
        after.pool_hits > before.pool_hits,
        "IVF queries should be served from the free lists"
    );
    drop(guard);
}
