//! Oracle tests for the quantized retrieval paths (DESIGN.md section 15):
//!
//! * `PanelDtype::F64` through the fused range-sharded scan must be
//!   **bit-identical** to the unquantized exact engine — same items, same
//!   score bits — at any thread count and block geometry. This is the
//!   strongest statement of the scan + merge's exactness: the sharding
//!   never changes results, only the dtype does.
//! * Lossy dtypes must agree with their own score-then-select oracle
//!   (the dtype pair kernel + `select_top_k`), and with the quantized
//!   IVF arm at full probe.
//! * The opt-in refine pass must reproduce f64 oracle scores on the
//!   selected stripe.

use dt_serve::{
    IvfIndex, IvfParams, PanelDtype, QuantScratch, RetrievalMode, ScoringIndex, SeenLists,
    TopKBatch, TopKEngine,
};
use dt_tensor::topk::{select_top_k, Ranked};
use dt_tensor::Tensor;

const DTYPES: [PanelDtype; 3] = [PanelDtype::F64, PanelDtype::F32, PanelDtype::ScaledI8];

fn build_index(n_users: usize, n_items: usize, dim: usize, seed: u64) -> ScoringIndex {
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64 / (1u64 << 53) as f64 - 0.5
    };
    let p = Tensor::from_fn(n_users, dim, |_, _| next());
    let q = Tensor::from_fn(n_items, dim, |_, _| next());
    let bu: Vec<f64> = (0..n_users).map(|_| next() * 0.2).collect();
    let bi: Vec<f64> = (0..n_items).map(|_| next() * 0.2).collect();
    ScoringIndex::new(p, q, bu, bi, 0.07)
}

fn seen_for(n_users: usize) -> SeenLists {
    SeenLists::from_pairs(
        n_users,
        (0..n_users as u32).flat_map(|u| [(u, u % 11), (u, (u * 7) % 23), (u, 2)]),
    )
}

#[test]
fn f64_dtype_is_bit_identical_to_the_exact_engine() {
    let index = build_index(40, 20_000, 12, 0xA1);
    let seen = seen_for(40);
    let users: Vec<usize> = (0..64).map(|j| (j * 13) % 40).collect();
    let engine = TopKEngine::new();
    for k in [1, 10, 50] {
        let exact = engine.recommend(&index, &users, k, Some(&seen));
        let quant =
            engine.recommend_quantized(&index.quantize(PanelDtype::F64), &users, k, Some(&seen));
        assert_eq!(exact, quant, "k={k}");
    }
}

#[test]
fn lossy_dtypes_match_their_score_then_select_oracle() {
    let index = build_index(9, 10_000, 8, 0xB2);
    let seen = seen_for(9);
    let users: Vec<usize> = vec![0, 5, 8, 5];
    let k = 17;
    let engine = TopKEngine::new();
    let all_items: Vec<usize> = (0..index.n_items()).collect();
    for dtype in DTYPES {
        let qidx = index.quantize(dtype);
        let got = engine.recommend_quantized(&qidx, &users, k, Some(&seen));
        let mut scores = Vec::new();
        for (j, &u) in users.iter().enumerate() {
            dt_tensor::quant::score_user_items_into(
                qidx.user_panel_q(),
                qidx.item_panel_q(),
                u,
                &all_items,
                Some(qidx.biases()),
                &mut scores,
            );
            let mut want = vec![Ranked::TOMBSTONE; k];
            let n = select_top_k(&scores, seen.seen(u), &mut want);
            assert_eq!(got.user(j).len(), n, "{} user {u}", dtype.label());
            for (g, w) in got.user(j).iter().zip(&want[..n]) {
                assert_eq!(g.item, w.item, "{} user {u}", dtype.label());
                assert_eq!(g.score.to_bits(), w.score.to_bits(), "{}", dtype.label());
            }
        }
    }
}

#[test]
fn block_geometry_does_not_change_results() {
    let index = build_index(12, 9_000, 6, 0xC3);
    let users: Vec<usize> = (0..30).map(|j| (j * 5) % 12).collect();
    for dtype in DTYPES {
        let qidx = index.quantize(dtype);
        let whole = TopKEngine::new().recommend_quantized(&qidx, &users, 8, None);
        // Tiny budget: one user per block, many blocks.
        let split = TopKEngine::with_block_elems(1).recommend_quantized(&qidx, &users, 8, None);
        assert_eq!(whole, split, "{}", dtype.label());
    }
}

#[test]
fn results_are_bit_identical_across_widths() {
    let index = build_index(16, 30_000, 16, 0xD4);
    let seen = seen_for(16);
    let users: Vec<usize> = (0..24).map(|j| (j * 3) % 16).collect();
    let engine = TopKEngine::new();
    for dtype in DTYPES {
        let qidx = index.quantize(dtype);
        let run = || engine.recommend_quantized(&qidx, &users, 10, Some(&seen));
        let base = dt_parallel::with_thread_limit(1, run);
        for width in [2, 8] {
            let wide = dt_parallel::with_thread_limit(width, run);
            assert_eq!(base, wide, "{} width {width}", dtype.label());
        }
    }
}

#[test]
fn ivf_full_probe_equals_quantized_exact() {
    let index = build_index(10, 6_000, 10, 0xE5);
    let seen = seen_for(10);
    let users: Vec<usize> = vec![3, 0, 9, 3];
    let nlist = 16;
    let ivf = IvfIndex::build(
        &index,
        &IvfParams {
            nlist,
            iters: 6,
            seed: 11,
            train_cap: 0,
        },
    );
    let engine = TopKEngine::new();
    for dtype in DTYPES {
        let qidx = index.quantize(dtype);
        let exact = engine.recommend_quantized(&qidx, &users, 12, Some(&seen));
        let mut got = TopKBatch::new();
        let mut scratch = QuantScratch::default();
        engine.recommend_ivf_quantized_into(
            &qidx,
            &ivf,
            nlist,
            &users,
            12,
            Some(&seen),
            None,
            &mut scratch,
            &mut got,
        );
        assert_eq!(exact, got, "{}", dtype.label());
    }
}

#[test]
fn retrieve_quantized_dispatches_on_mode() {
    let index = build_index(8, 4_000, 8, 0xF6);
    let qidx = index.quantize(PanelDtype::ScaledI8);
    let ivf = IvfIndex::build(
        &index,
        &IvfParams {
            nlist: 8,
            iters: 4,
            seed: 5,
            train_cap: 0,
        },
    );
    let users = [1usize, 7, 4];
    let mut scratch = QuantScratch::default();
    let mut exact = TopKBatch::new();
    TopKEngine::new().retrieve_quantized_into(
        &qidx,
        None,
        &users,
        5,
        None,
        None,
        &mut scratch,
        &mut exact,
    );
    let mut via_ivf = TopKBatch::new();
    TopKEngine::new()
        .with_mode(RetrievalMode::Ivf {
            nlist: 8,
            nprobe: 8,
        })
        .retrieve_quantized_into(
            &qidx,
            Some(&ivf),
            &users,
            5,
            None,
            None,
            &mut scratch,
            &mut via_ivf,
        );
    assert_eq!(exact, via_ivf);
}

#[test]
fn refine_restores_oracle_scores_on_the_selected_stripe() {
    let index = build_index(6, 5_000, 12, 0xAB);
    let users = [0usize, 2, 5];
    let k = 9;
    let engine = TopKEngine::new();
    for dtype in DTYPES {
        let qidx = index.quantize(dtype);
        let mut scratch = QuantScratch::default();
        let mut refined = TopKBatch::new();
        engine.recommend_quantized_into(
            &qidx,
            &users,
            k,
            None,
            Some(&index),
            &mut scratch,
            &mut refined,
        );
        // Every refined score must equal the f64 pair-kernel score of its
        // (user, item), and stripes must stay sorted best-first.
        for (j, &u) in users.iter().enumerate() {
            let stripe = refined.user(j);
            assert_eq!(stripe.len(), k);
            let items: Vec<usize> = stripe.iter().map(|r| r.item as usize).collect();
            let want = dt_tensor::scoring::score_pairs(
                index.user_panel(),
                index.item_panel(),
                0..index.dim(),
                &vec![u; items.len()],
                &items,
                Some(index.biases()),
            );
            for (g, w) in stripe.iter().zip(&want) {
                assert_eq!(g.score.to_bits(), w.to_bits(), "{}", dtype.label());
            }
            for pair in stripe.windows(2) {
                assert!(
                    dt_tensor::topk::rank_cmp(&pair[0], &pair[1]).is_le(),
                    "{}: refined stripe out of order",
                    dtype.label()
                );
            }
        }
    }
    // For the F64 dtype, refine re-scores with the same kernel over the
    // same panels, so it must be a no-op relative to the unrefined run.
    let qidx = index.quantize(PanelDtype::F64);
    let unrefined = engine.recommend_quantized(&qidx, &users, k, None);
    let mut scratch = QuantScratch::default();
    let mut refined = TopKBatch::new();
    engine.recommend_quantized_into(
        &qidx,
        &users,
        k,
        None,
        Some(&index),
        &mut scratch,
        &mut refined,
    );
    assert_eq!(unrefined, refined);
}

#[test]
fn i8_overlap_with_the_f64_oracle_is_high() {
    // Clustered-ish panels at serving scale would be slow here; even on
    // unstructured random panels the i8 top-10 should mostly agree with
    // the oracle. This is a sanity floor — BENCH_quant.json reports the
    // real frontier on clustered panels.
    let index = build_index(8, 20_000, 32, 0xCD);
    let users: Vec<usize> = (0..8).collect();
    let engine = TopKEngine::new();
    let oracle = engine.recommend(&index, &users, 10, None);
    let got = engine.recommend_quantized(&index.quantize(PanelDtype::ScaledI8), &users, 10, None);
    let mut inter = 0usize;
    let mut total = 0usize;
    for j in 0..users.len() {
        let truth: Vec<u32> = oracle.user(j).iter().map(|r| r.item).collect();
        inter += got
            .user(j)
            .iter()
            .filter(|r| truth.contains(&r.item))
            .count();
        total += truth.len();
    }
    let overlap = inter as f64 / total as f64;
    assert!(overlap >= 0.85, "i8 top-10 overlap {overlap} too low");
}

#[test]
fn edge_cases_mirror_the_exact_engine() {
    let index = build_index(4, 100, 5, 0xEF);
    let engine = TopKEngine::new();
    for dtype in DTYPES {
        let qidx = index.quantize(dtype);
        // Empty users / zero k.
        let empty = engine.recommend_quantized(&qidx, &[], 3, None);
        assert_eq!(empty.n_users(), 0);
        let zero_k = engine.recommend_quantized(&qidx, &[1], 0, None);
        assert!(zero_k.user(0).is_empty());
        // K beyond the catalog truncates counts.
        let big_k = engine.recommend_quantized(&qidx, &[2], 150, None);
        assert_eq!(big_k.user(0).len(), 100);
        // Everything seen yields an empty stripe.
        let all = SeenLists::from_pairs(4, (0..100u32).map(|i| (3u32, i)));
        let none_left = engine.recommend_quantized(&qidx, &[3], 5, Some(&all));
        assert!(none_left.user(0).is_empty());
    }
}

#[test]
#[should_panic(expected = "user id out of bounds")]
fn out_of_bounds_user_panics() {
    let index = build_index(3, 50, 4, 0x11);
    let qidx = index.quantize(PanelDtype::F32);
    let _ = TopKEngine::new().recommend_quantized(&qidx, &[3], 5, None);
}

#[test]
#[should_panic(expected = "oracle shape")]
fn mismatched_refine_oracle_panics() {
    let index = build_index(3, 50, 4, 0x12);
    let other = build_index(3, 60, 4, 0x13);
    let qidx = index.quantize(PanelDtype::F32);
    let mut scratch = QuantScratch::default();
    let mut out = TopKBatch::new();
    TopKEngine::new().recommend_quantized_into(
        &qidx,
        &[0],
        5,
        None,
        Some(&other),
        &mut scratch,
        &mut out,
    );
}
