//! Std-only IVF retrieval tests (the offline verification shim runs this
//! file verbatim): the IVF arm against a sort oracle over the probed
//! candidate set, full-probe == exact bit-equality, bit-identity across
//! `DT_NUM_THREADS` 1/2/8, pooled-vs-fresh equivalence, and the
//! degenerate-panel / shortfall edge cases. The `proptest` variants live
//! in `kmeans_props.rs` (full workspace only).

use dt_serve::{
    IvfIndex, IvfParams, IvfScratch, Ranked, RetrievalMode, ScoringIndex, SeenLists, TopKBatch,
    TopKEngine,
};
use dt_tensor::topk::rank_cmp;
use dt_tensor::Tensor;

/// Deterministic xorshift64* stream, as in the bench emitters.
struct XorShift(u64);

impl XorShift {
    fn next_f64(&mut self) -> f64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        (self.0.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64 / (1u64 << 53) as f64 - 0.5
    }

    fn next_below(&mut self, n: usize) -> usize {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        (self.0.wrapping_mul(0x2545_F491_4F6C_DD1D) % n as u64) as usize
    }
}

fn random_index(n_users: usize, n_items: usize, dim: usize, seed: u64) -> ScoringIndex {
    let mut rng = XorShift(seed | 1);
    let p = Tensor::from_fn(n_users, dim, |_, _| rng.next_f64());
    let q = Tensor::from_fn(n_items, dim, |_, _| rng.next_f64());
    let ub: Vec<f64> = (0..n_users).map(|_| rng.next_f64() * 0.2).collect();
    let ib: Vec<f64> = (0..n_items).map(|_| rng.next_f64() * 0.2).collect();
    let mu = rng.next_f64();
    ScoringIndex::new(p, q, ub, ib, mu)
}

fn random_seen(n_users: usize, n_items: usize, per_user: usize, seed: u64) -> SeenLists {
    let mut rng = XorShift(seed | 1);
    let mut pairs = Vec::new();
    for u in 0..n_users {
        for _ in 0..rng.next_below(per_user + 1) {
            pairs.push((u as u32, rng.next_below(n_items) as u32));
        }
    }
    SeenLists::from_pairs(n_users, pairs)
}

fn build_ivf(index: &ScoringIndex, nlist: usize, seed: u64) -> IvfIndex {
    IvfIndex::build(
        index,
        &IvfParams {
            nlist,
            iters: 5,
            seed,
            train_cap: 0,
        },
    )
}

fn ivf_query(
    index: &ScoringIndex,
    ivf: &IvfIndex,
    nprobe: usize,
    users: &[usize],
    k: usize,
    seen: Option<&SeenLists>,
) -> TopKBatch {
    let mut out = TopKBatch::new();
    let mut scratch = IvfScratch::default();
    TopKEngine::new().recommend_ivf_into(
        index,
        ivf,
        nprobe,
        users,
        k,
        seen,
        &mut scratch,
        &mut out,
    );
    out
}

fn assert_batches_bit_equal(a: &TopKBatch, b: &TopKBatch, what: &str) {
    assert_eq!(a.n_users(), b.n_users(), "{what}: stripe count");
    for j in 0..a.n_users() {
        let (x, y) = (a.user(j), b.user(j));
        assert_eq!(x.len(), y.len(), "{what}: user-slot {j}");
        for (g, w) in x.iter().zip(y) {
            assert_eq!(g.item, w.item, "{what}: user-slot {j}");
            assert_eq!(
                g.score.to_bits(),
                w.score.to_bits(),
                "{what}: user-slot {j}"
            );
        }
    }
}

/// Independent reimplementation of the probe-and-rerank contract with
/// full sorts instead of heaps and the full block kernel instead of the
/// pair kernel: rank cells by `pᵤ·c_dir + c_bias`, take the best
/// `nprobe` (widening while fewer than `k` unseen candidates survive),
/// then rank the candidate set by its exact block scores.
fn oracle_ivf(
    index: &ScoringIndex,
    ivf: &IvfIndex,
    nprobe: usize,
    user: usize,
    k: usize,
    seen: &[u32],
) -> Vec<Ranked> {
    let nlist = ivf.nlist();
    let aff =
        dt_tensor::scoring::score_user_block(index.user_panel(), ivf.centroids(), &[user], None);
    let mut cells: Vec<Ranked> = aff
        .row(0)
        .iter()
        .zip(ivf.centroid_bias())
        .enumerate()
        .map(|(c, (a, b))| Ranked {
            item: c as u32,
            score: a + b,
        })
        .collect();
    aff.recycle();
    cells.sort_by(rank_cmp);

    let mut probe = nprobe.clamp(1, nlist);
    let cand: Vec<u32> = loop {
        let mut cand: Vec<u32> = cells[..probe]
            .iter()
            .flat_map(|c| ivf.cell(c.item as usize).iter().copied())
            .filter(|i| seen.binary_search(i).is_err())
            .collect();
        cand.sort_unstable();
        if cand.len() >= k || probe == nlist {
            break cand;
        }
        probe = (probe * 2).min(nlist);
    };

    let block = index.score_block(&[user]);
    let mut ranked: Vec<Ranked> = cand
        .iter()
        .map(|&i| Ranked {
            item: i,
            score: block.row(0)[i as usize],
        })
        .collect();
    block.recycle();
    ranked.sort_by(rank_cmp);
    ranked.truncate(k);
    ranked
}

#[test]
fn ivf_matches_probed_candidate_sort_oracle() {
    let (n_users, n_items) = (19, 347);
    let index = random_index(n_users, n_items, 8, 0xC0FFEE);
    let seen = random_seen(n_users, n_items, 30, 0xFEED);
    let ivf = build_ivf(&index, 12, 3);
    let users: Vec<usize> = (0..40).map(|j| (j * 11) % n_users).collect();
    for nprobe in [1, 3, 12] {
        for k in [1, 7, 50] {
            let batch = ivf_query(&index, &ivf, nprobe, &users, k, Some(&seen));
            for (j, &u) in users.iter().enumerate() {
                let want = oracle_ivf(&index, &ivf, nprobe, u, k, seen.seen(u));
                let got = batch.user(j);
                assert_eq!(got.len(), want.len(), "nprobe={nprobe} k={k} user={u}");
                for (g, w) in got.iter().zip(&want) {
                    assert_eq!(g.item, w.item, "nprobe={nprobe} k={k} user={u}");
                    assert_eq!(
                        g.score.to_bits(),
                        w.score.to_bits(),
                        "nprobe={nprobe} k={k} user={u}"
                    );
                }
            }
        }
    }
}

#[test]
fn full_probe_equals_exact_engine_bitwise() {
    let (n_users, n_items) = (13, 401);
    let index = random_index(n_users, n_items, 6, 0xBEEF);
    let seen = random_seen(n_users, n_items, 25, 0xD00D);
    let ivf = build_ivf(&index, 16, 9);
    let users: Vec<usize> = (0..24).map(|j| (j * 5) % n_users).collect();
    let engine = TopKEngine::new();
    for k in [1, 10, 401, 450] {
        let exact = engine.recommend(&index, &users, k, Some(&seen));
        let via_ivf = ivf_query(&index, &ivf, 16, &users, k, Some(&seen));
        assert_batches_bit_equal(&exact, &via_ivf, &format!("k={k}"));
    }
}

#[test]
fn ivf_is_bit_identical_across_thread_widths() {
    let (n_users, n_items) = (17, 523);
    let index = random_index(n_users, n_items, 9, 0xACE);
    let seen = random_seen(n_users, n_items, 15, 0xCAFE);
    let users: Vec<usize> = (0..32).map(|j| (j * 3) % n_users).collect();
    // Build AND query under each width: both phases must be
    // width-independent for the end-to-end claim to hold.
    let run = || {
        let ivf = build_ivf(&index, 20, 5);
        ivf_query(&index, &ivf, 4, &users, 10, Some(&seen))
    };
    let baseline = dt_parallel::with_thread_limit(1, run);
    for width in [2, 8] {
        let wide = dt_parallel::with_thread_limit(width, run);
        assert_batches_bit_equal(&baseline, &wide, &format!("width {width}"));
    }
}

#[test]
fn pooled_and_fresh_buffers_agree_bitwise() {
    let index = random_index(11, 211, 7, 0x5AFE);
    let users: Vec<usize> = (0..20).map(|j| (j * 7) % 11).collect();
    let run = || {
        let ivf = build_ivf(&index, 8, 13);
        ivf_query(&index, &ivf, 2, &users, 9, None)
    };
    let pooled = run();
    let fresh = dt_tensor::pool::with_disabled(run);
    assert_batches_bit_equal(&pooled, &fresh, "pooled vs fresh");
}

#[test]
fn degenerate_panel_collapses_cells_yet_serves_exactly() {
    // All items identical: k-means leaves every item in cell 0 and the
    // other cells empty. nprobe = 1 already covers the catalog, so the
    // result must equal the exact engine's (which here is a pure
    // item-id tie-break ladder).
    let p = Tensor::from_fn(3, 4, |i, j| (i * 4 + j) as f64 * 0.1);
    let q = Tensor::from_fn(120, 4, |_, j| 0.3 - j as f64 * 0.05);
    let index = ScoringIndex::new(p, q, vec![0.0; 3], vec![0.125; 120], 0.7);
    let ivf = build_ivf(&index, 10, 21);
    assert_eq!(ivf.nlist(), 10);
    let exact = TopKEngine::new().recommend(&index, &[0, 2, 1], 6, None);
    let got = ivf_query(&index, &ivf, 1, &[0, 2, 1], 6, None);
    assert_batches_bit_equal(&exact, &got, "degenerate panel");
}

#[test]
fn all_candidates_seen_widens_then_returns_short_stripes() {
    let (n_users, n_items) = (3, 60);
    let index = random_index(n_users, n_items, 5, 0xF00);
    let ivf = build_ivf(&index, 6, 2);
    // User 0 has seen everything; user 1 everything but item 7.
    let mut pairs: Vec<(u32, u32)> = (0..n_items as u32).map(|i| (0, i)).collect();
    pairs.extend((0..n_items as u32).filter(|&i| i != 7).map(|i| (1, i)));
    let seen = SeenLists::from_pairs(n_users, pairs);
    let batch = ivf_query(&index, &ivf, 1, &[0, 1, 2], 5, Some(&seen));
    assert!(batch.user(0).is_empty());
    let u1: Vec<u32> = batch.user(1).iter().map(|r| r.item).collect();
    assert_eq!(u1, vec![7]);
    assert_eq!(batch.user(2).len(), 5);
}

#[test]
fn k_at_least_catalog_degrades_to_exact_minus_seen() {
    let index = random_index(5, 37, 4, 0xB00);
    let ivf = build_ivf(&index, 5, 4);
    let seen = SeenLists::from_pairs(5, vec![(2, 0), (2, 36)]);
    let engine = TopKEngine::new();
    for k in [37, 64] {
        let exact = engine.recommend(&index, &[2, 4], k, Some(&seen));
        let got = ivf_query(&index, &ivf, 1, &[2, 4], k, Some(&seen));
        assert_batches_bit_equal(&exact, &got, &format!("k={k}"));
    }
}

#[test]
fn mode_dispatch_and_reused_scratch_match_fresh() {
    let index = random_index(9, 150, 6, 0x9A);
    let ivf = build_ivf(&index, 10, 6);
    let seen = random_seen(9, 150, 10, 0x77);
    let engine = TopKEngine::new().with_mode(RetrievalMode::Ivf {
        nlist: 10,
        nprobe: 3,
    });
    assert_eq!(
        engine.mode(),
        RetrievalMode::Ivf {
            nlist: 10,
            nprobe: 3
        }
    );
    let mut scratch = IvfScratch::default();
    let mut reused = TopKBatch::new();
    // Different geometries through one scratch: stale state must not leak.
    engine.retrieve_into(
        &index,
        Some(&ivf),
        &[0, 1, 2, 3],
        12,
        Some(&seen),
        &mut scratch,
        &mut reused,
    );
    engine.retrieve_into(
        &index,
        Some(&ivf),
        &[8, 8, 5],
        4,
        Some(&seen),
        &mut scratch,
        &mut reused,
    );
    let fresh = ivf_query(&index, &ivf, 3, &[8, 8, 5], 4, Some(&seen));
    assert_batches_bit_equal(&fresh, &reused, "reused scratch");
}

#[test]
fn recall_improves_monotonically_to_one_at_full_probe() {
    // Recall@10 against the exact arm must hit 1.0 at nprobe = nlist and
    // be non-trivial even at nprobe = 1 on a smooth random panel.
    let (n_users, n_items) = (16, 600);
    let index = random_index(n_users, n_items, 8, 0x1DEA);
    let ivf = build_ivf(&index, 16, 8);
    let users: Vec<usize> = (0..n_users).collect();
    let k = 10;
    let exact = TopKEngine::new().recommend(&index, &users, k, None);
    let recall_at = |nprobe: usize| -> f64 {
        let got = ivf_query(&index, &ivf, nprobe, &users, k, None);
        let mut hit = 0usize;
        let mut total = 0usize;
        for j in 0..users.len() {
            let truth: Vec<u32> = exact.user(j).iter().map(|r| r.item).collect();
            total += truth.len();
            hit += got
                .user(j)
                .iter()
                .filter(|r| truth.contains(&r.item))
                .count();
        }
        hit as f64 / total as f64
    };
    let r1 = recall_at(1);
    let r16 = recall_at(16);
    assert!((r16 - 1.0).abs() < f64::EPSILON, "full probe recall {r16}");
    assert!(r1 > 0.2, "nprobe=1 recall suspiciously low: {r1}");
    assert!(r1 <= r16 + f64::EPSILON);
}
