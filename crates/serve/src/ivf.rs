//! IVF coarse quantization of the item panel: sublinear candidate
//! generation for top-K retrieval (DESIGN.md section 13).
//!
//! The exact engine streams all `M` item rows per user block; at
//! `M = 10⁶` that is ~256 MiB of panel traffic per block and the serving
//! hot path is memory-bound on it. An inverted-file (IVF) index instead
//! partitions the catalog into `nlist` cells with deterministic k-means
//! ([`crate::kmeans`]) over the **bias-augmented** item vectors
//! `[qᵢ | bᵢ]`: the item bias participates in the score
//! `pᵤ·qᵢ + b_u + bᵢ + μ`, so clustering in the augmented space keeps
//! high-bias items findable even when their embedding is small.
//!
//! At query time a user probes the `nprobe` cells whose centroids score
//! highest under the same model — `pᵤ·c_dir + c_bias` (the user bias and
//! μ are constant per user and drop out of the per-user cell ranking) —
//! then reranks every member of the probed cells *exactly* through the
//! pair-scoring kernel. Approximation lives entirely in candidate
//! generation; whenever the probed cells cover the true top-K, the output
//! is bit-equal to the exact engine's.
//!
//! Cells are stored CSR (`offsets` + ascending `items` per cell), built
//! by a counting sort over the k-means assignments — a cold path that may
//! allocate freely; queries share the engine's pooled scratch.

use dt_tensor::Tensor;

use crate::index::ScoringIndex;
use crate::kmeans::{self, KmeansConfig};

/// Build-time hyper-parameters of an [`IvfIndex`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IvfParams {
    /// Number of inverted cells (clamped to the catalog size).
    pub nlist: usize,
    /// Lloyd iterations for the coarse quantizer.
    pub iters: usize,
    /// Seed for the k-means init.
    pub seed: u64,
    /// k-means training subsample cap (0 = train on the full panel).
    pub train_cap: usize,
}

impl Default for IvfParams {
    fn default() -> Self {
        Self {
            nlist: 256,
            iters: 8,
            seed: 0x1AF5_0C75,
            train_cap: 1 << 17,
        }
    }
}

/// An inverted-file index over a [`ScoringIndex`]'s item panel.
///
/// Holds the centroid codebook split into its direction part
/// (`nlist_eff × dim`, matching the user panel width) and bias part, plus
/// CSR inverted lists mapping each cell to its ascending member item ids.
/// Read-only after build; one index serves any `nprobe` and any `K`.
pub struct IvfIndex {
    centroids: Tensor,
    centroid_bias: Vec<f64>,
    offsets: Vec<usize>,
    items: Vec<u32>,
    dim: usize,
    n_items: usize,
}

impl IvfIndex {
    /// Clusters `index`'s item panel into `params.nlist` cells. Cold
    /// path: allocates freely and runs the pool-parallel assignment GEMM;
    /// the result is bit-identical for any `DT_NUM_THREADS`.
    ///
    /// # Panics
    /// Panics when the catalog is empty or `params.nlist` is zero.
    #[must_use]
    pub fn build(index: &ScoringIndex, params: &IvfParams) -> Self {
        let q = index.item_panel();
        let m = q.rows();
        let dim = q.cols();
        assert!(m > 0, "IvfIndex: empty catalog");
        assert!(params.nlist > 0, "IvfIndex: nlist must be positive");
        let item_bias = index.biases().item;

        // Bias-augmented panel [q_i | b_i]: clustering respects the score
        // geometry, not just the embedding. alloc-ok: build-time panel copy.
        let aug = Tensor::from_fn(
            m,
            dim + 1,
            |i, j| {
                if j < dim {
                    q.get(i, j)
                } else {
                    item_bias[i]
                }
            },
        );
        let km = kmeans::run(
            &aug,
            &KmeansConfig {
                k: params.nlist,
                iters: params.iters,
                seed: params.seed,
                train_cap: params.train_cap,
            },
        );
        let nlist = km.centroids.rows();

        // Split the augmented codebook back into direction + bias parts.
        let centroids = km.centroids.slice_cols(0, dim);
        let centroid_bias: Vec<f64> = (0..nlist).map(|c| km.centroids.get(c, dim)).collect();

        // Counting-sort the assignments into CSR lists; scanning items in
        // ascending id keeps each cell's member list ascending.
        let mut offsets = vec![0usize; nlist + 1];
        for &a in &km.assignments {
            offsets[a as usize + 1] += 1;
        }
        for c in 0..nlist {
            offsets[c + 1] += offsets[c];
        }
        let mut cursor = offsets.clone();
        let mut items = vec![0u32; m];
        for (i, &a) in km.assignments.iter().enumerate() {
            items[cursor[a as usize]] = i as u32;
            cursor[a as usize] += 1;
        }

        Self {
            centroids,
            centroid_bias,
            offsets,
            items,
            dim,
            n_items: m,
        }
    }

    /// Number of cells (the requested `nlist`, clamped to the catalog).
    #[must_use]
    pub fn nlist(&self) -> usize {
        self.centroids.rows()
    }

    /// Catalog size this index was built over.
    #[must_use]
    pub fn n_items(&self) -> usize {
        self.n_items
    }

    /// Panel width this index was built over (must match the query
    /// index's `dim`).
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The centroid direction panel (`nlist × dim`).
    #[must_use]
    pub fn centroids(&self) -> &Tensor {
        &self.centroids
    }

    /// Per-cell centroid bias (the clustered item-bias coordinate).
    #[must_use]
    pub fn centroid_bias(&self) -> &[f64] {
        &self.centroid_bias
    }

    /// The ascending member item ids of cell `c`.
    ///
    /// # Panics
    /// Panics when `c` is out of bounds.
    #[must_use]
    pub fn cell(&self, c: usize) -> &[u32] {
        assert!(
            c < self.nlist(),
            "IvfIndex: cell {c} out of bounds for {} cells",
            self.nlist()
        );
        &self.items[self.offsets[c]..self.offsets[c + 1]]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn index(n_users: usize, n_items: usize, dim: usize, seed: u64) -> ScoringIndex {
        let mut rng = crate::kmeans::SplitMix64(seed);
        let mut vals = |n: usize, scale: f64| -> Vec<f64> {
            (0..n)
                .map(|_| (rng.next_u64() as f64 / u64::MAX as f64 - 0.5) * scale)
                .collect()
        };
        let p = Tensor::from_vec(n_users, dim, vals(n_users * dim, 1.0));
        let q = Tensor::from_vec(n_items, dim, vals(n_items * dim, 1.0));
        let ub = vals(n_users, 0.1);
        let ib = vals(n_items, 0.1);
        ScoringIndex::new(p, q, ub, ib, 0.05)
    }

    #[test]
    fn cells_partition_the_catalog() {
        let idx = index(4, 300, 6, 17);
        let ivf = IvfIndex::build(
            &idx,
            &IvfParams {
                nlist: 16,
                iters: 4,
                seed: 1,
                train_cap: 0,
            },
        );
        assert_eq!(ivf.nlist(), 16);
        assert_eq!(ivf.n_items(), 300);
        assert_eq!(ivf.dim(), 6);
        let mut all: Vec<u32> = (0..16).flat_map(|c| ivf.cell(c).iter().copied()).collect();
        all.sort_unstable();
        assert_eq!(all, (0..300).collect::<Vec<u32>>());
        for c in 0..16 {
            assert!(
                ivf.cell(c).windows(2).all(|w| w[0] < w[1]),
                "cell {c} not ascending"
            );
        }
    }

    #[test]
    fn nlist_clamps_to_catalog() {
        let idx = index(2, 5, 3, 3);
        let ivf = IvfIndex::build(
            &idx,
            &IvfParams {
                nlist: 64,
                iters: 2,
                seed: 1,
                train_cap: 0,
            },
        );
        assert_eq!(ivf.nlist(), 5);
        assert_eq!(ivf.centroid_bias().len(), 5);
    }

    #[test]
    fn degenerate_panel_collapses_to_one_cell() {
        // All items identical: every item lands in cell 0, the other
        // cells are empty — queries must still work (engine tests).
        let p = Tensor::from_fn(2, 3, |i, j| (i + j) as f64);
        let q = Tensor::from_fn(40, 3, |_, j| j as f64 * 0.5);
        let idx = ScoringIndex::new(p, q, vec![0.0; 2], vec![0.25; 40], 0.0);
        let ivf = IvfIndex::build(
            &idx,
            &IvfParams {
                nlist: 8,
                iters: 3,
                seed: 7,
                train_cap: 0,
            },
        );
        assert_eq!(ivf.cell(0).len(), 40);
        for c in 1..ivf.nlist() {
            assert!(ivf.cell(c).is_empty());
        }
    }

    #[test]
    fn build_is_deterministic() {
        let idx = index(3, 200, 5, 29);
        let params = IvfParams {
            nlist: 10,
            iters: 5,
            seed: 42,
            train_cap: 0,
        };
        let a = IvfIndex::build(&idx, &params);
        let b = IvfIndex::build(&idx, &params);
        assert_eq!(a.centroids(), b.centroids());
        assert_eq!(a.centroid_bias(), b.centroid_bias());
        assert_eq!(a.offsets, b.offsets);
        assert_eq!(a.items, b.items);
    }

    #[test]
    #[should_panic(expected = "empty catalog")]
    fn empty_catalog_panics() {
        let idx = ScoringIndex::new(
            Tensor::zeros(1, 2),
            Tensor::zeros(0, 2),
            vec![0.0],
            vec![],
            0.0,
        );
        let _ = IvfIndex::build(&idx, &IvfParams::default());
    }
}
