//! The batched top-K engine: block scoring + parallel partial selection.

use dt_tensor::topk::{select_top_k, Ranked};

use crate::index::{ScoringIndex, SeenLists};

/// Default score-matrix budget per block, in elements (`f64`s). At one
/// million items this caps a block at four users (32 MiB of scores);
/// small catalogs batch hundreds of users per GEMM.
pub const DEFAULT_BLOCK_ELEMS: usize = 1 << 22;

/// Maximum users per block regardless of catalog size (keeps the gather
/// panel and per-block latency bounded).
const MAX_BLOCK_USERS: usize = 512;

/// Batched full-catalog top-K retrieval over a [`ScoringIndex`].
///
/// Users are processed in blocks sized so the `B × M` score matrix fits
/// the configured element budget; each block runs one gather + blocked
/// GEMM on the `dt-parallel` pool, then per-user bounded-heap selection
/// sharded across the same pool (one chunk per user — chunk geometry
/// depends only on K, never on the thread count). All scratch is pooled
/// and recycled, so steady-state queries allocate nothing.
#[derive(Debug, Clone, Copy)]
pub struct TopKEngine {
    block_elems: usize,
}

impl Default for TopKEngine {
    fn default() -> Self {
        Self {
            block_elems: DEFAULT_BLOCK_ELEMS,
        }
    }
}

impl TopKEngine {
    /// An engine with the default block budget.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// An engine with a custom score-matrix budget (elements per block).
    /// Block geometry never affects results — only memory and latency.
    ///
    /// # Panics
    /// Panics when `block_elems` is zero.
    #[must_use]
    pub fn with_block_elems(block_elems: usize) -> Self {
        assert!(block_elems > 0, "TopKEngine: block_elems must be positive");
        Self { block_elems }
    }

    /// Users per block for a catalog of `n_items`.
    #[must_use]
    pub fn block_users(&self, n_items: usize) -> usize {
        (self.block_elems / n_items.max(1)).clamp(1, MAX_BLOCK_USERS)
    }

    /// Recommends the top `k` unseen items for each user in `users`,
    /// writing into `out` (reused across calls: steady state performs
    /// zero allocations). `users` may repeat and is answered in order.
    ///
    /// # Panics
    /// Panics when a user id is out of bounds for the index, or `seen`
    /// covers a different user universe than the index.
    pub fn recommend_into(
        &self,
        index: &ScoringIndex,
        users: &[usize],
        k: usize,
        seen: Option<&SeenLists>,
        out: &mut TopKBatch,
    ) {
        if let Some(s) = seen {
            assert_eq!(
                s.n_users(),
                index.n_users(),
                "recommend: seen-lists cover {} users, index has {}",
                s.n_users(),
                index.n_users()
            );
        }
        out.reset(users.len(), k);
        if users.is_empty() || k == 0 {
            return;
        }
        let block = self.block_users(index.n_items());
        let mut lo = 0;
        while lo < users.len() {
            let hi = (lo + block).min(users.len());
            let block_users = &users[lo..hi];
            let scores = index.score_block(block_users);
            let entries = &mut out.entries[lo * k..hi * k];
            dt_parallel::for_each_chunk(entries, k, |j, slot| {
                let exclude = seen.map_or(&[][..], |s| s.seen(block_users[j]));
                select_top_k(scores.row(j), exclude, slot);
            });
            scores.recycle();
            lo = hi;
        }
        out.recount();
    }

    /// [`TopKEngine::recommend_into`] returning a fresh batch.
    #[must_use]
    pub fn recommend(
        &self,
        index: &ScoringIndex,
        users: &[usize],
        k: usize,
        seen: Option<&SeenLists>,
    ) -> TopKBatch {
        let mut out = TopKBatch::new();
        self.recommend_into(index, users, k, seen, &mut out);
        out
    }
}

/// Top-K results for a batch of users, stored flat (one K-slot stripe per
/// user, best first). Reuse one batch across queries to stay
/// allocation-free.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TopKBatch {
    k: usize,
    counts: Vec<usize>,
    entries: Vec<Ranked>,
}

impl TopKBatch {
    /// An empty batch.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Clears and resizes for `n_users` stripes of `k` slots, all
    /// tombstoned. Shrinking/regrowing reuses the existing buffers.
    pub fn reset(&mut self, n_users: usize, k: usize) {
        self.k = k;
        self.counts.clear();
        self.counts.resize(n_users, 0);
        self.entries.clear();
        self.entries.resize(n_users * k, Ranked::TOMBSTONE);
    }

    /// The cutoff K this batch was filled at.
    #[must_use]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of user stripes.
    #[must_use]
    pub fn n_users(&self) -> usize {
        self.counts.len()
    }

    /// The filled recommendations of the `j`-th queried user, best first.
    /// May hold fewer than K entries when exclusions or a small catalog
    /// leave fewer candidates.
    ///
    /// # Panics
    /// Panics when `j` is out of bounds.
    #[must_use]
    pub fn user(&self, j: usize) -> &[Ranked] {
        assert!(
            j < self.counts.len(),
            "TopKBatch: user {j} out of bounds for {} stripes",
            self.counts.len()
        );
        &self.entries[j * self.k..j * self.k + self.counts[j]]
    }

    /// Mutable view of user `j`'s full K-slot stripe, for callers that
    /// fill a batch through [`select_top_k`] themselves (the `predict`
    /// fallback path in `dt-core`). Record the filled count with
    /// [`TopKBatch::set_count`].
    ///
    /// # Panics
    /// Panics when `j` is out of bounds.
    pub fn user_mut(&mut self, j: usize) -> &mut [Ranked] {
        assert!(
            j < self.counts.len(),
            "TopKBatch: user {j} out of bounds for {} stripes",
            self.counts.len()
        );
        &mut self.entries[j * self.k..(j + 1) * self.k]
    }

    /// Records how many slots of user `j`'s stripe are filled.
    ///
    /// # Panics
    /// Panics when `j` is out of bounds or `n > k`.
    pub fn set_count(&mut self, j: usize, n: usize) {
        assert!(n <= self.k, "TopKBatch: count {n} exceeds k {}", self.k);
        self.counts[j] = n;
    }

    /// Recomputes all counts from the tombstone boundaries (used after a
    /// parallel fill, where per-user counts cannot be written from the
    /// selection tasks).
    fn recount(&mut self) {
        for (j, count) in self.counts.iter_mut().enumerate() {
            *count = self.entries[j * self.k..(j + 1) * self.k]
                .iter()
                .take_while(|r| !r.is_tombstone())
                .count();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dt_tensor::Tensor;

    fn tiny_index() -> ScoringIndex {
        // 2 users x 4 items, dim 2, hand-checkable scores.
        let p = Tensor::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        let q = Tensor::from_rows(&[&[3.0, 0.5], &[2.0, 1.5], &[1.0, 2.5], &[0.0, 3.5]]);
        ScoringIndex::new(p, q, vec![0.0, 0.0], vec![0.0; 4], 0.0)
    }

    #[test]
    fn tiny_catalog_ranks_by_hand() {
        let idx = tiny_index();
        let batch = TopKEngine::new().recommend(&idx, &[0, 1], 2, None);
        // user 0 scores = first column of q: items 0,1 best.
        let u0: Vec<u32> = batch.user(0).iter().map(|r| r.item).collect();
        assert_eq!(u0, vec![0, 1]);
        // user 1 scores = second column: items 3,2 best.
        let u1: Vec<u32> = batch.user(1).iter().map(|r| r.item).collect();
        assert_eq!(u1, vec![3, 2]);
    }

    #[test]
    fn seen_items_are_excluded() {
        let idx = tiny_index();
        let seen = SeenLists::from_pairs(2, vec![(0, 0), (1, 3), (1, 2)]);
        let batch = TopKEngine::new().recommend(&idx, &[0, 1], 2, Some(&seen));
        let u0: Vec<u32> = batch.user(0).iter().map(|r| r.item).collect();
        assert_eq!(u0, vec![1, 2]);
        let u1: Vec<u32> = batch.user(1).iter().map(|r| r.item).collect();
        assert_eq!(u1, vec![1, 0]);
    }

    #[test]
    fn k_beyond_catalog_truncates_counts() {
        let idx = tiny_index();
        let batch = TopKEngine::new().recommend(&idx, &[0], 9, None);
        assert_eq!(batch.user(0).len(), 4);
        assert_eq!(batch.k(), 9);
    }

    #[test]
    fn empty_queries_and_zero_k_are_fine() {
        let idx = tiny_index();
        let empty = TopKEngine::new().recommend(&idx, &[], 3, None);
        assert_eq!(empty.n_users(), 0);
        let zero_k = TopKEngine::new().recommend(&idx, &[0, 1], 0, None);
        assert_eq!(zero_k.n_users(), 2);
        assert!(zero_k.user(1).is_empty());
    }

    #[test]
    fn block_geometry_does_not_change_results() {
        let idx = tiny_index();
        let users = [0usize, 1, 0, 1, 1, 0];
        let whole = TopKEngine::new().recommend(&idx, &users, 3, None);
        // Force one user per block: 4 items -> block budget of 1 element.
        let split = TopKEngine::with_block_elems(1).recommend(&idx, &users, 3, None);
        assert_eq!(whole, split);
    }

    #[test]
    fn block_users_scales_with_catalog() {
        let e = TopKEngine::new();
        assert_eq!(e.block_users(1 << 22), 1);
        assert_eq!(e.block_users(1 << 13), MAX_BLOCK_USERS);
        assert_eq!(e.block_users(0), MAX_BLOCK_USERS);
    }
}
