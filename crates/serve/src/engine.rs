//! The batched top-K engine: block scoring + parallel partial selection,
//! with an optional IVF sublinear retrieval arm.

use dt_tensor::topk::{select_top_k, Ranked};

use crate::index::{ScoringIndex, SeenLists};
use crate::ivf::IvfIndex;

/// Default score-matrix budget per block, in elements (`f64`s). At one
/// million items this caps a block at four users (32 MiB of scores);
/// small catalogs batch hundreds of users per GEMM.
pub const DEFAULT_BLOCK_ELEMS: usize = 1 << 22;

/// Maximum users per block regardless of catalog size (keeps the gather
/// panel and per-block latency bounded).
pub(crate) const MAX_BLOCK_USERS: usize = 512;

/// How a [`TopKEngine`] generates candidates before selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetrievalMode {
    /// Score the full catalog per user block (the default; always
    /// exact).
    Exact,
    /// Probe the `nprobe` best cells of an `nlist`-cell [`IvfIndex`] and
    /// rerank their members exactly. Falls back towards exact on
    /// candidate shortfall (see [`TopKEngine::recommend_ivf_into`]).
    Ivf {
        /// Cell count the companion [`IvfIndex`] was built with.
        nlist: usize,
        /// Cells probed per user before any shortfall widening.
        nprobe: usize,
    },
}

/// Reusable per-query scratch for the IVF arm. All five buffers grow to
/// their steady-state size on the first query and are only rewritten
/// afterwards, so repeated queries through one scratch allocate nothing.
#[derive(Debug, Clone, Default)]
pub struct IvfScratch {
    /// Per-cell centroid scores of the current user.
    pub(crate) cell_scores: Vec<f64>,
    /// Selected probe cells (best first).
    pub(crate) cells: Vec<Ranked>,
    /// Gathered candidate item ids, ascending, seen items removed.
    pub(crate) cand: Vec<usize>,
    /// Rerank scores of `cand` (parallel array).
    pub(crate) scores: Vec<f64>,
    /// Selected candidate *positions* before the id remap.
    pub(crate) sel: Vec<Ranked>,
}

impl IvfScratch {
    /// Fills `cell_scores` with `affinity_row + centroid_bias` — the
    /// per-cell ranking scores of one user (user bias and μ are constant
    /// per user, so cell ranking ignores them).
    pub(crate) fn fill_cell_scores(&mut self, affinity_row: &[f64], centroid_bias: &[f64]) {
        self.cell_scores.clear();
        self.cell_scores
            .extend(affinity_row.iter().zip(centroid_bias).map(|(a, b)| a + b));
    }

    /// Gathers the members of the user's best `nprobe` cells into `cand`
    /// (ascending item ids, `exclude` removed), widening the probe while
    /// fewer than `k` candidates survive — the shortfall loop shared by
    /// the f64 and quantized IVF arms. `fill_cell_scores` must have run
    /// for this user first.
    pub(crate) fn gather_candidates(
        &mut self,
        ivf: &IvfIndex,
        nprobe: usize,
        k: usize,
        exclude: &[u32],
    ) {
        let nlist = ivf.nlist();
        let mut probe = nprobe.clamp(1, nlist);
        loop {
            self.cells.clear();
            self.cells.resize(probe, Ranked::TOMBSTONE);
            let n_cells = select_top_k(&self.cell_scores, &[], &mut self.cells);
            self.cand.clear();
            for cell in &self.cells[..n_cells] {
                self.cand
                    .extend(ivf.cell(cell.item as usize).iter().map(|&i| i as usize));
            }
            // Cells partition the catalog, so the concatenation is
            // duplicate-free; sorting restores ascending item ids
            // (the select_top_k tie-break order).
            self.cand.sort_unstable();
            if !exclude.is_empty() {
                let cand = &mut self.cand;
                let mut e = 0usize;
                let mut w = 0usize;
                for r in 0..cand.len() {
                    let id = cand[r] as u32;
                    while e < exclude.len() && exclude[e] < id {
                        e += 1;
                    }
                    if e < exclude.len() && exclude[e] == id {
                        continue;
                    }
                    cand[w] = cand[r];
                    w += 1;
                }
                cand.truncate(w);
            }
            if self.cand.len() >= k || probe == nlist {
                return;
            }
            probe = (probe * 2).min(nlist);
        }
    }
}

/// Batched full-catalog top-K retrieval over a [`ScoringIndex`].
///
/// Users are processed in blocks sized so the `B × M` score matrix fits
/// the configured element budget; each block runs one gather + blocked
/// GEMM on the `dt-parallel` pool, then per-user bounded-heap selection
/// sharded across the same pool (one chunk per user — chunk geometry
/// depends only on K, never on the thread count). All scratch is pooled
/// and recycled, so steady-state queries allocate nothing.
#[derive(Debug, Clone, Copy)]
pub struct TopKEngine {
    block_elems: usize,
    mode: RetrievalMode,
    /// Index-generation counter for result caching (`dt-cache`): cached
    /// stripes are keyed by this value, so bumping it lazily invalidates
    /// every previously cached result without any flush pass.
    epoch: u64,
}

impl Default for TopKEngine {
    fn default() -> Self {
        Self {
            block_elems: DEFAULT_BLOCK_ELEMS,
            mode: RetrievalMode::Exact,
            epoch: 0,
        }
    }
}

impl TopKEngine {
    /// An engine with the default block budget.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// An engine with a custom score-matrix budget (elements per block).
    /// Block geometry never affects results — only memory and latency.
    ///
    /// # Panics
    /// Panics when `block_elems` is zero.
    #[must_use]
    pub fn with_block_elems(block_elems: usize) -> Self {
        assert!(block_elems > 0, "TopKEngine: block_elems must be positive");
        Self {
            block_elems,
            mode: RetrievalMode::Exact,
            epoch: 0,
        }
    }

    /// The same engine with a different retrieval mode (consumed by
    /// [`TopKEngine::retrieve_into`]).
    #[must_use]
    pub fn with_mode(self, mode: RetrievalMode) -> Self {
        Self { mode, ..self }
    }

    /// The configured retrieval mode.
    #[must_use]
    pub fn mode(&self) -> RetrievalMode {
        self.mode
    }

    /// The current index epoch (see [`TopKEngine::bump_epoch`]).
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Advances the index epoch. Call after the underlying
    /// [`ScoringIndex`] changes (model refresh): every result cached at
    /// an older epoch becomes stale and is lazily evicted by `dt-cache`
    /// on its next probe — no global flush runs anywhere.
    pub fn bump_epoch(&mut self) {
        self.epoch += 1;
    }

    /// The same engine pinned to a specific epoch (tests and replay).
    #[must_use]
    pub fn with_epoch(self, epoch: u64) -> Self {
        Self { epoch, ..self }
    }

    /// The configured score-matrix element budget per block.
    pub(crate) fn block_elems(&self) -> usize {
        self.block_elems
    }

    /// Users per block for a catalog of `n_items`.
    #[must_use]
    pub fn block_users(&self, n_items: usize) -> usize {
        (self.block_elems / n_items.max(1)).clamp(1, MAX_BLOCK_USERS)
    }

    /// Recommends the top `k` unseen items for each user in `users`,
    /// writing into `out` (reused across calls: steady state performs
    /// zero allocations). `users` may repeat and is answered in order.
    ///
    /// # Panics
    /// Panics when a user id is out of bounds for the index, or `seen`
    /// covers a different user universe than the index.
    pub fn recommend_into(
        &self,
        index: &ScoringIndex,
        users: &[usize],
        k: usize,
        seen: Option<&SeenLists>,
        out: &mut TopKBatch,
    ) {
        if let Some(s) = seen {
            assert_eq!(
                s.n_users(),
                index.n_users(),
                "recommend: seen-lists cover {} users, index has {}",
                s.n_users(),
                index.n_users()
            );
        }
        out.reset(users.len(), k);
        if users.is_empty() || k == 0 {
            return;
        }
        let block = self.block_users(index.n_items());
        let mut lo = 0;
        while lo < users.len() {
            let hi = (lo + block).min(users.len());
            let block_users = &users[lo..hi];
            let scores = index.score_block(block_users);
            let entries = &mut out.entries[lo * k..hi * k];
            dt_parallel::for_each_chunk(entries, k, |j, slot| {
                let exclude = seen.map_or(&[][..], |s| s.seen(block_users[j]));
                select_top_k(scores.row(j), exclude, slot);
            });
            scores.recycle();
            lo = hi;
        }
        out.recount();
    }

    /// [`TopKEngine::recommend_into`] returning a fresh batch.
    #[must_use]
    pub fn recommend(
        &self,
        index: &ScoringIndex,
        users: &[usize],
        k: usize,
        seen: Option<&SeenLists>,
    ) -> TopKBatch {
        let mut out = TopKBatch::new();
        self.recommend_into(index, users, k, seen, &mut out);
        out
    }

    /// IVF retrieval: probe `nprobe` cells per user, rerank their members
    /// exactly, select the top `k`. Bit-identical at any thread count.
    ///
    /// Per user block one GEMM scores the block against the centroid
    /// panel (`pᵤ·c_dir + c_bias`; user bias and μ are constant per user
    /// so cell ranking ignores them). Per user, the best `nprobe` cells
    /// are chosen by the bounded-heap kernel, their member lists
    /// concatenated, sorted ascending and purged of seen items, and the
    /// survivors scored through the exact pair kernel — so candidate
    /// scores (and therefore the output whenever the probed cells cover
    /// the true top-K) are bit-equal to the exact engine's.
    ///
    /// **Shortfall fallback:** while fewer than `k` unseen candidates
    /// survive and not every cell is probed yet, the probe width doubles;
    /// at `nprobe = nlist` the candidate set is the full unseen catalog,
    /// i.e. the query degrades to exact rather than returning a short
    /// stripe.
    ///
    /// All scratch lives in `scratch` plus the tensor pool: steady-state
    /// queries allocate nothing.
    ///
    /// # Panics
    /// Panics when the IVF index does not match `index` (catalog size or
    /// panel width), a user id is out of bounds, or `seen` covers a
    /// different user universe than the index.
    #[allow(clippy::too_many_arguments)]
    pub fn recommend_ivf_into(
        &self,
        index: &ScoringIndex,
        ivf: &IvfIndex,
        nprobe: usize,
        users: &[usize],
        k: usize,
        seen: Option<&SeenLists>,
        scratch: &mut IvfScratch,
        out: &mut TopKBatch,
    ) {
        assert_eq!(
            ivf.n_items(),
            index.n_items(),
            "recommend_ivf: IVF built over {} items, index has {}",
            ivf.n_items(),
            index.n_items()
        );
        assert_eq!(
            ivf.dim(),
            index.dim(),
            "recommend_ivf: IVF built at dim {}, index has {}",
            ivf.dim(),
            index.dim()
        );
        if let Some(s) = seen {
            assert_eq!(
                s.n_users(),
                index.n_users(),
                "recommend_ivf: seen-lists cover {} users, index has {}",
                s.n_users(),
                index.n_users()
            );
        }
        out.reset(users.len(), k);
        if users.is_empty() || k == 0 {
            return;
        }
        let nlist = ivf.nlist();
        let dim = index.dim();
        // Centroid panels are small (≤ 1024 rows), so a block covers the
        // whole query in almost all cases.
        let block = (self.block_elems / nlist.max(1)).clamp(1, MAX_BLOCK_USERS);
        let mut lo = 0;
        while lo < users.len() {
            let hi = (lo + block).min(users.len());
            let block_users = &users[lo..hi];
            // Cell affinities: one GEMM, no bias (added per user below so
            // the tensor stays reusable as a pure dot-product block).
            let affinity = dt_tensor::scoring::score_user_block(
                index.user_panel(),
                ivf.centroids(),
                block_users,
                None,
            );
            for (j, &user) in block_users.iter().enumerate() {
                scratch.fill_cell_scores(affinity.row(j), ivf.centroid_bias());
                let exclude = seen.map_or(&[][..], |s| s.seen(user));
                scratch.gather_candidates(ivf, nprobe, k, exclude);
                dt_tensor::scoring::score_user_items_into(
                    index.user_panel(),
                    index.item_panel(),
                    0..dim,
                    user,
                    &scratch.cand,
                    Some(index.biases()),
                    &mut scratch.scores,
                );
                scratch.sel.clear();
                scratch.sel.resize(k, Ranked::TOMBSTONE);
                let n = select_top_k(&scratch.scores, &[], &mut scratch.sel);
                let stripe = out.user_mut(lo + j);
                for (slot, r) in stripe.iter_mut().zip(&scratch.sel[..n]) {
                    *slot = Ranked {
                        item: scratch.cand[r.item as usize] as u32,
                        score: r.score,
                    };
                }
                out.set_count(lo + j, n);
            }
            affinity.recycle();
            lo = hi;
        }
    }

    /// Dispatches on [`TopKEngine::mode`]: the exact arm ignores `ivf`
    /// and `scratch`; the IVF arm requires a companion index built with
    /// the matching `nlist`.
    ///
    /// # Panics
    /// Panics in IVF mode when `ivf` is `None` or was built with a
    /// different `nlist` than the mode says (after clamping to the
    /// catalog size), plus everything [`TopKEngine::recommend_into`] /
    /// [`TopKEngine::recommend_ivf_into`] panic on.
    #[allow(clippy::too_many_arguments)]
    pub fn retrieve_into(
        &self,
        index: &ScoringIndex,
        ivf: Option<&IvfIndex>,
        users: &[usize],
        k: usize,
        seen: Option<&SeenLists>,
        scratch: &mut IvfScratch,
        out: &mut TopKBatch,
    ) {
        match self.mode {
            RetrievalMode::Exact => self.recommend_into(index, users, k, seen, out),
            RetrievalMode::Ivf { nlist, nprobe } => {
                assert!(
                    ivf.is_some(),
                    "retrieve: RetrievalMode::Ivf needs a companion IvfIndex"
                );
                let Some(ivf) = ivf else { return };
                assert_eq!(
                    ivf.nlist(),
                    nlist.min(index.n_items()),
                    "retrieve: IvfIndex has {} cells, mode says nlist {}",
                    ivf.nlist(),
                    nlist
                );
                self.recommend_ivf_into(index, ivf, nprobe, users, k, seen, scratch, out);
            }
        }
    }
}

/// Top-K results for a batch of users, stored flat (one K-slot stripe per
/// user, best first). Reuse one batch across queries to stay
/// allocation-free.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TopKBatch {
    k: usize,
    counts: Vec<usize>,
    entries: Vec<Ranked>,
}

impl TopKBatch {
    /// An empty batch.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Clears and resizes for `n_users` stripes of `k` slots, all
    /// tombstoned. Shrinking/regrowing reuses the existing buffers.
    pub fn reset(&mut self, n_users: usize, k: usize) {
        self.k = k;
        self.counts.clear();
        self.counts.resize(n_users, 0);
        self.entries.clear();
        self.entries.resize(n_users * k, Ranked::TOMBSTONE);
    }

    /// The cutoff K this batch was filled at.
    #[must_use]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of user stripes.
    #[must_use]
    pub fn n_users(&self) -> usize {
        self.counts.len()
    }

    /// The filled recommendations of the `j`-th queried user, best first.
    /// May hold fewer than K entries when exclusions or a small catalog
    /// leave fewer candidates.
    ///
    /// # Panics
    /// Panics when `j` is out of bounds.
    #[must_use]
    pub fn user(&self, j: usize) -> &[Ranked] {
        assert!(
            j < self.counts.len(),
            "TopKBatch: user {j} out of bounds for {} stripes",
            self.counts.len()
        );
        &self.entries[j * self.k..j * self.k + self.counts[j]]
    }

    /// Mutable view of user `j`'s full K-slot stripe, for callers that
    /// fill a batch through [`select_top_k`] themselves (the `predict`
    /// fallback path in `dt-core`). Record the filled count with
    /// [`TopKBatch::set_count`].
    ///
    /// # Panics
    /// Panics when `j` is out of bounds.
    pub fn user_mut(&mut self, j: usize) -> &mut [Ranked] {
        assert!(
            j < self.counts.len(),
            "TopKBatch: user {j} out of bounds for {} stripes",
            self.counts.len()
        );
        &mut self.entries[j * self.k..(j + 1) * self.k]
    }

    /// Records how many slots of user `j`'s stripe are filled.
    ///
    /// # Panics
    /// Panics when `j` is out of bounds or `n > k`.
    pub fn set_count(&mut self, j: usize, n: usize) {
        assert!(n <= self.k, "TopKBatch: count {n} exceeds k {}", self.k);
        self.counts[j] = n;
    }

    /// Mutable view of the stripes for queried users `lo..hi`, for
    /// crate-internal engines that fill many stripes from one parallel
    /// pass (chunked by `k`). Follow with [`TopKBatch::recount`].
    pub(crate) fn stripes_mut(&mut self, lo: usize, hi: usize) -> &mut [Ranked] {
        &mut self.entries[lo * self.k..hi * self.k]
    }

    /// Recomputes all counts from the tombstone boundaries (used after a
    /// parallel fill, where per-user counts cannot be written from the
    /// selection tasks).
    pub(crate) fn recount(&mut self) {
        for (j, count) in self.counts.iter_mut().enumerate() {
            *count = self.entries[j * self.k..(j + 1) * self.k]
                .iter()
                .take_while(|r| !r.is_tombstone())
                .count();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dt_tensor::Tensor;

    fn tiny_index() -> ScoringIndex {
        // 2 users x 4 items, dim 2, hand-checkable scores.
        let p = Tensor::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        let q = Tensor::from_rows(&[&[3.0, 0.5], &[2.0, 1.5], &[1.0, 2.5], &[0.0, 3.5]]);
        ScoringIndex::new(p, q, vec![0.0, 0.0], vec![0.0; 4], 0.0)
    }

    #[test]
    fn tiny_catalog_ranks_by_hand() {
        let idx = tiny_index();
        let batch = TopKEngine::new().recommend(&idx, &[0, 1], 2, None);
        // user 0 scores = first column of q: items 0,1 best.
        let u0: Vec<u32> = batch.user(0).iter().map(|r| r.item).collect();
        assert_eq!(u0, vec![0, 1]);
        // user 1 scores = second column: items 3,2 best.
        let u1: Vec<u32> = batch.user(1).iter().map(|r| r.item).collect();
        assert_eq!(u1, vec![3, 2]);
    }

    #[test]
    fn seen_items_are_excluded() {
        let idx = tiny_index();
        let seen = SeenLists::from_pairs(2, vec![(0, 0), (1, 3), (1, 2)]);
        let batch = TopKEngine::new().recommend(&idx, &[0, 1], 2, Some(&seen));
        let u0: Vec<u32> = batch.user(0).iter().map(|r| r.item).collect();
        assert_eq!(u0, vec![1, 2]);
        let u1: Vec<u32> = batch.user(1).iter().map(|r| r.item).collect();
        assert_eq!(u1, vec![1, 0]);
    }

    #[test]
    fn k_beyond_catalog_truncates_counts() {
        let idx = tiny_index();
        let batch = TopKEngine::new().recommend(&idx, &[0], 9, None);
        assert_eq!(batch.user(0).len(), 4);
        assert_eq!(batch.k(), 9);
    }

    #[test]
    fn empty_queries_and_zero_k_are_fine() {
        let idx = tiny_index();
        let empty = TopKEngine::new().recommend(&idx, &[], 3, None);
        assert_eq!(empty.n_users(), 0);
        let zero_k = TopKEngine::new().recommend(&idx, &[0, 1], 0, None);
        assert_eq!(zero_k.n_users(), 2);
        assert!(zero_k.user(1).is_empty());
    }

    #[test]
    fn block_geometry_does_not_change_results() {
        let idx = tiny_index();
        let users = [0usize, 1, 0, 1, 1, 0];
        let whole = TopKEngine::new().recommend(&idx, &users, 3, None);
        // Force one user per block: 4 items -> block budget of 1 element.
        let split = TopKEngine::with_block_elems(1).recommend(&idx, &users, 3, None);
        assert_eq!(whole, split);
    }

    #[test]
    fn epoch_starts_at_zero_and_survives_reconfiguration() {
        let mut e = TopKEngine::new();
        assert_eq!(e.epoch(), 0);
        e.bump_epoch();
        e.bump_epoch();
        assert_eq!(e.epoch(), 2);
        // Reconfiguring the mode must not reset the epoch (stale cache
        // entries would be served as fresh).
        let e = e.with_mode(RetrievalMode::Ivf {
            nlist: 4,
            nprobe: 2,
        });
        assert_eq!(e.epoch(), 2);
        assert_eq!(TopKEngine::with_block_elems(64).epoch(), 0);
        assert_eq!(TopKEngine::new().with_epoch(7).epoch(), 7);
    }

    #[test]
    fn block_users_scales_with_catalog() {
        let e = TopKEngine::new();
        assert_eq!(e.block_users(1 << 22), 1);
        assert_eq!(e.block_users(1 << 13), MAX_BLOCK_USERS);
        assert_eq!(e.block_users(0), MAX_BLOCK_USERS);
    }

    fn ivf_for(idx: &ScoringIndex, nlist: usize) -> crate::IvfIndex {
        crate::IvfIndex::build(
            idx,
            &crate::IvfParams {
                nlist,
                iters: 4,
                seed: 7,
                train_cap: 0,
            },
        )
    }

    #[test]
    fn full_probe_equals_exact_bit_for_bit() {
        // nprobe = nlist covers the whole catalog, so the IVF arm must
        // reproduce the exact engine's output exactly (same kernels, same
        // association order, same tie-breaks).
        let idx = tiny_index();
        let ivf = ivf_for(&idx, 2);
        let engine = TopKEngine::new();
        let exact = engine.recommend(&idx, &[0, 1, 0], 3, None);
        let mut got = TopKBatch::new();
        let mut scratch = IvfScratch::default();
        engine.recommend_ivf_into(&idx, &ivf, 2, &[0, 1, 0], 3, None, &mut scratch, &mut got);
        assert_eq!(exact, got);
    }

    #[test]
    fn all_seen_forces_fallback_then_empty() {
        // Every item seen: the shortfall loop must widen to nlist and
        // still return an empty stripe rather than hang or under-assert.
        let idx = tiny_index();
        let ivf = ivf_for(&idx, 2);
        let seen = SeenLists::from_pairs(2, (0..4).map(|i| (0u32, i as u32)));
        let mut got = TopKBatch::new();
        let mut scratch = IvfScratch::default();
        TopKEngine::new().recommend_ivf_into(
            &idx,
            &ivf,
            1,
            &[0],
            2,
            Some(&seen),
            &mut scratch,
            &mut got,
        );
        assert!(got.user(0).is_empty());
    }

    #[test]
    fn k_beyond_catalog_widens_to_full_probe() {
        let idx = tiny_index();
        let ivf = ivf_for(&idx, 2);
        let mut got = TopKBatch::new();
        let mut scratch = IvfScratch::default();
        TopKEngine::new().recommend_ivf_into(&idx, &ivf, 1, &[1], 9, None, &mut scratch, &mut got);
        // Shortfall widening reaches nlist, so all 4 items come back.
        assert_eq!(got.user(0).len(), 4);
        let exact = TopKEngine::new().recommend(&idx, &[1], 9, None);
        assert_eq!(exact, got);
    }

    #[test]
    fn retrieve_dispatches_on_mode() {
        let idx = tiny_index();
        let ivf = ivf_for(&idx, 2);
        let mut scratch = IvfScratch::default();
        let mut exact = TopKBatch::new();
        TopKEngine::new().retrieve_into(&idx, None, &[0, 1], 2, None, &mut scratch, &mut exact);
        let mut via_ivf = TopKBatch::new();
        TopKEngine::new()
            .with_mode(RetrievalMode::Ivf {
                nlist: 2,
                nprobe: 2,
            })
            .retrieve_into(
                &idx,
                Some(&ivf),
                &[0, 1],
                2,
                None,
                &mut scratch,
                &mut via_ivf,
            );
        assert_eq!(exact, via_ivf);
    }

    #[test]
    #[should_panic(expected = "companion IvfIndex")]
    fn ivf_mode_without_index_panics() {
        let idx = tiny_index();
        let mut scratch = IvfScratch::default();
        let mut out = TopKBatch::new();
        TopKEngine::new()
            .with_mode(RetrievalMode::Ivf {
                nlist: 2,
                nprobe: 1,
            })
            .retrieve_into(&idx, None, &[0], 2, None, &mut scratch, &mut out);
    }

    #[test]
    #[should_panic(expected = "cells, mode says nlist")]
    fn mismatched_nlist_panics() {
        let idx = tiny_index();
        let ivf = ivf_for(&idx, 2);
        let mut scratch = IvfScratch::default();
        let mut out = TopKBatch::new();
        TopKEngine::new()
            .with_mode(RetrievalMode::Ivf {
                nlist: 4,
                nprobe: 1,
            })
            .retrieve_into(&idx, Some(&ivf), &[0], 2, None, &mut scratch, &mut out);
    }
}
