//! The serving-side view of a trained model: dense panels + seen-lists.

use dt_tensor::scoring::Biases;
use dt_tensor::Tensor;

/// A dense scoring index extracted from a trained MF-family model:
/// `score(u, i) = pᵤ·qᵢ + user_bias[u] + item_bias[i] + mu`.
///
/// The panels are contiguous row-major copies (primary-part slices for
/// the DT methods), decoupled from the parameter store, so an index can
/// outlive training and be queried concurrently with the next run.
/// Scores are the model's raw logits — monotone in its predicted rating
/// probability, so rankings agree with `Recommender::predict`.
pub struct ScoringIndex {
    p: Tensor,
    q: Tensor,
    user_bias: Vec<f64>,
    item_bias: Vec<f64>,
    mu: f64,
}

impl ScoringIndex {
    /// Builds an index from user/item panels of equal width and matching
    /// bias vectors.
    ///
    /// # Panics
    /// Panics when the panel widths disagree, a bias vector does not
    /// match its panel height, or the catalog has `u32::MAX` or more
    /// items (ids must fit a `u32` with the tombstone id left over).
    #[must_use]
    pub fn new(p: Tensor, q: Tensor, user_bias: Vec<f64>, item_bias: Vec<f64>, mu: f64) -> Self {
        assert_eq!(
            p.cols(),
            q.cols(),
            "ScoringIndex: panel width mismatch {} vs {}",
            p.cols(),
            q.cols()
        );
        assert!(
            (q.rows() as u64) < u64::from(u32::MAX),
            "ScoringIndex: catalog of {} items overflows u32 ids",
            q.rows()
        );
        assert_eq!(
            user_bias.len(),
            p.rows(),
            "ScoringIndex: {} user biases vs {} user rows",
            user_bias.len(),
            p.rows()
        );
        assert_eq!(
            item_bias.len(),
            q.rows(),
            "ScoringIndex: {} item biases vs {} item rows",
            item_bias.len(),
            q.rows()
        );
        Self {
            p,
            q,
            user_bias,
            item_bias,
            mu,
        }
    }

    /// Number of users the index can serve.
    #[must_use]
    pub fn n_users(&self) -> usize {
        self.p.rows()
    }

    /// Catalog size M.
    #[must_use]
    pub fn n_items(&self) -> usize {
        self.q.rows()
    }

    /// Panel width (the scoring dimension).
    #[must_use]
    pub fn dim(&self) -> usize {
        self.p.cols()
    }

    /// The user panel P (`n_users × dim`), for callers that run their own
    /// kernels over it (the IVF cell-ranking GEMM).
    #[must_use]
    pub fn user_panel(&self) -> &Tensor {
        &self.p
    }

    /// The item panel Q (`n_items × dim`) — the panel the IVF coarse
    /// quantizer partitions.
    #[must_use]
    pub fn item_panel(&self) -> &Tensor {
        &self.q
    }

    /// The affine bias view used by the scoring kernels.
    #[must_use]
    pub fn biases(&self) -> Biases<'_> {
        Biases {
            user: &self.user_bias,
            item: &self.item_bias,
            global: self.mu,
        }
    }

    /// Scores a block of users against the entire catalog as a pooled
    /// `B × M` tensor (recycle it when done). Bit-identical at any
    /// thread count; see [`dt_tensor::scoring::score_user_block`].
    ///
    /// # Panics
    /// Panics when a user id is out of bounds.
    #[must_use]
    pub fn score_block(&self, users: &[usize]) -> Tensor {
        dt_tensor::scoring::score_user_block(&self.p, &self.q, users, Some(self.biases()))
    }
}

/// Per-user sorted seen-lists in CSR layout: the items to exclude from a
/// user's recommendations (typically their training interactions).
#[derive(Debug, Clone, Default)]
pub struct SeenLists {
    offsets: Vec<usize>,
    items: Vec<u32>,
}

impl SeenLists {
    /// Empty lists for `n_users` users (nothing excluded).
    #[must_use]
    pub fn empty(n_users: usize) -> Self {
        Self {
            offsets: vec![0; n_users + 1],
            items: Vec::new(),
        }
    }

    /// Builds seen-lists from `(user, item)` pairs. Items are sorted and
    /// de-duplicated per user; pair order does not matter. Build is a
    /// cold path and may allocate freely.
    ///
    /// # Panics
    /// Panics when a pair's user id is `>= n_users`.
    #[must_use]
    pub fn from_pairs(n_users: usize, pairs: impl IntoIterator<Item = (u32, u32)>) -> Self {
        let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); n_users];
        for (u, i) in pairs {
            assert!(
                (u as usize) < n_users,
                "SeenLists: user {u} out of bounds for {n_users} users"
            );
            buckets[u as usize].push(i);
        }
        let mut offsets = Vec::with_capacity(n_users + 1);
        offsets.push(0);
        let mut items = Vec::new();
        for mut bucket in buckets {
            bucket.sort_unstable();
            bucket.dedup();
            items.extend_from_slice(&bucket);
            offsets.push(items.len());
        }
        Self { offsets, items }
    }

    /// Number of users covered.
    #[must_use]
    pub fn n_users(&self) -> usize {
        self.offsets.len() - 1
    }

    /// The sorted, de-duplicated seen items of one user.
    ///
    /// # Panics
    /// Panics when `user` is out of bounds.
    #[must_use]
    pub fn seen(&self, user: usize) -> &[u32] {
        assert!(
            user < self.n_users(),
            "SeenLists: user {user} out of bounds for {} users",
            self.n_users()
        );
        &self.items[self.offsets[user]..self.offsets[user + 1]]
    }

    /// Total seen entries across all users.
    #[must_use]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Returns `true` when no user has any seen item.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seen_lists_sort_and_dedup() {
        let s = SeenLists::from_pairs(3, vec![(1, 5), (1, 2), (1, 5), (0, 9)]);
        assert_eq!(s.n_users(), 3);
        assert_eq!(s.seen(0), &[9]);
        assert_eq!(s.seen(1), &[2, 5]);
        assert_eq!(s.seen(2), &[] as &[u32]);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn empty_lists_cover_all_users() {
        let s = SeenLists::empty(4);
        assert_eq!(s.n_users(), 4);
        assert!(s.is_empty());
        assert!(s.seen(3).is_empty());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_range_user_panics() {
        let _ = SeenLists::from_pairs(2, vec![(2, 0)]);
    }

    #[test]
    fn index_validates_shapes() {
        let p = Tensor::zeros(2, 3);
        let q = Tensor::zeros(4, 3);
        let idx = ScoringIndex::new(p, q, vec![0.0; 2], vec![0.0; 4], 0.1);
        assert_eq!(idx.n_users(), 2);
        assert_eq!(idx.n_items(), 4);
        assert_eq!(idx.dim(), 3);
    }

    #[test]
    #[should_panic(expected = "panel width mismatch")]
    fn mismatched_panels_panic() {
        let _ = ScoringIndex::new(
            Tensor::zeros(2, 3),
            Tensor::zeros(4, 2),
            vec![0.0; 2],
            vec![0.0; 4],
            0.0,
        );
    }

    #[test]
    #[should_panic(expected = "user biases")]
    fn mismatched_bias_panics() {
        let _ = ScoringIndex::new(
            Tensor::zeros(2, 3),
            Tensor::zeros(4, 3),
            vec![0.0; 3],
            vec![0.0; 4],
            0.0,
        );
    }
}
