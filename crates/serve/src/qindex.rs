//! The mixed-precision serving index: a [`ScoringIndex`] re-exported at
//! a serving dtype (DESIGN.md section 15).

use dt_tensor::quant::{Panel, PanelDtype};
use dt_tensor::scoring::Biases;
use dt_tensor::Tensor;

use crate::index::ScoringIndex;

/// A [`ScoringIndex`] whose panels are stored in a serving dtype
/// ([`PanelDtype`]): `F64` verbatim (the accuracy oracle), `F32`, or
/// per-row-scaled `ScaledI8`.
///
/// Quantization points (what stays `f64`):
///
/// * **biases** — three small vectors, applied after the dot in the
///   shared association order; keeping them exact means only the dot
///   product carries quantization error;
/// * **the IVF cell-ranking user panel** — cell ranking runs one GEMM
///   over ≤ `nlist` centroids, which is `N·nlist` work, not `N·M`; the
///   `f64` copy retained here is user-proportional, not
///   catalog-proportional, so it costs little and keeps probe choices
///   (and the shortfall fallback) bit-identical to the unquantized IVF
///   path. Only the M-proportional member panels quantize.
pub struct QuantizedIndex {
    /// f64 user panel for the IVF cell-ranking GEMM (see above).
    user_panel: Tensor,
    p: Panel,
    q: Panel,
    user_bias: Vec<f64>,
    item_bias: Vec<f64>,
    mu: f64,
    /// Index-generation counter for result caching (`dt-cache`), the
    /// quantized twin of `TopKEngine::epoch`: the quantized arm caches
    /// against the index it actually scans, so re-exporting or refreshing
    /// this index invalidates its cached stripes independently of the
    /// f64 engine's epoch.
    epoch: u64,
}

impl ScoringIndex {
    /// Re-exports this index at a serving dtype. Quantization runs once
    /// here — at index-export time, with static per-row scales — never
    /// on the query path. `PanelDtype::F64` yields an index whose
    /// retrieval results are bit-identical to this one's.
    #[must_use]
    pub fn quantize(&self, dtype: PanelDtype) -> QuantizedIndex {
        let b = self.biases();
        QuantizedIndex {
            user_panel: self.user_panel().clone(),
            p: Panel::quantize(self.user_panel(), dtype),
            q: Panel::quantize(self.item_panel(), dtype),
            user_bias: b.user.to_vec(),
            item_bias: b.item.to_vec(),
            mu: b.global,
            epoch: 0,
        }
    }
}

impl QuantizedIndex {
    /// Number of users the index can serve.
    #[must_use]
    pub fn n_users(&self) -> usize {
        self.p.rows()
    }

    /// Catalog size M.
    #[must_use]
    pub fn n_items(&self) -> usize {
        self.q.rows()
    }

    /// Panel width (the scoring dimension).
    #[must_use]
    pub fn dim(&self) -> usize {
        self.p.cols()
    }

    /// Serving dtype of the quantized panels.
    #[must_use]
    pub fn dtype(&self) -> PanelDtype {
        self.q.dtype()
    }

    /// The current index epoch (see [`QuantizedIndex::bump_epoch`]).
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Advances the index epoch; results cached by `dt-cache` at older
    /// epochs become stale and are lazily evicted on their next probe.
    pub fn bump_epoch(&mut self) {
        self.epoch += 1;
    }

    /// The quantized user panel.
    #[must_use]
    pub fn user_panel_q(&self) -> &Panel {
        &self.p
    }

    /// The quantized item panel — the panel the exact scan streams.
    #[must_use]
    pub fn item_panel_q(&self) -> &Panel {
        &self.q
    }

    /// The f64 user panel retained for IVF cell ranking.
    #[must_use]
    pub fn user_panel(&self) -> &Tensor {
        &self.user_panel
    }

    /// The affine bias view used by the scoring kernels (always `f64`).
    #[must_use]
    pub fn biases(&self) -> Biases<'_> {
        Biases {
            user: &self.user_bias,
            item: &self.item_bias,
            global: self.mu,
        }
    }

    /// Catalog-side payload bytes per item (quantized item panel plus
    /// the `f64` item bias), the bandwidth the exact scan streams.
    #[must_use]
    pub fn bytes_per_item(&self) -> f64 {
        let items = self.n_items().max(1);
        (self.q.payload_bytes() + self.item_bias.len() * 8) as f64 / items as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn index() -> ScoringIndex {
        let p = Tensor::from_fn(3, 4, |r, c| (r * 4 + c) as f64 * 0.1 - 0.5);
        let q = Tensor::from_fn(7, 4, |r, c| ((r * 4 + c) as f64 * 0.37).sin());
        ScoringIndex::new(
            p,
            q,
            vec![0.1, -0.2, 0.3],
            (0..7).map(|i| f64::from(i) * 0.01).collect(),
            0.05,
        )
    }

    #[test]
    fn quantize_preserves_shapes_and_biases() {
        let idx = index();
        for dtype in [PanelDtype::F64, PanelDtype::F32, PanelDtype::ScaledI8] {
            let mut qi = idx.quantize(dtype);
            assert_eq!(qi.epoch(), 0);
            qi.bump_epoch();
            assert_eq!(qi.epoch(), 1);
            assert_eq!(qi.n_users(), 3);
            assert_eq!(qi.n_items(), 7);
            assert_eq!(qi.dim(), 4);
            assert_eq!(qi.dtype(), dtype);
            assert_eq!(qi.biases().user, idx.biases().user);
            assert_eq!(qi.biases().item, idx.biases().item);
            assert_eq!(qi.biases().global, idx.biases().global);
            assert_eq!(qi.user_panel().data(), idx.user_panel().data());
        }
    }

    #[test]
    fn bytes_per_item_orders_the_dtypes() {
        let idx = index();
        let b64 = idx.quantize(PanelDtype::F64).bytes_per_item();
        let b32 = idx.quantize(PanelDtype::F32).bytes_per_item();
        let b8 = idx.quantize(PanelDtype::ScaledI8).bytes_per_item();
        // dim 4: 4*8+8=40, 4*4+8=24, 4+8+8=20 bytes/item.
        assert_eq!(b64, 40.0);
        assert_eq!(b32, 24.0);
        assert_eq!(b8, 20.0);
        assert!(b8 < b32 && b32 < b64);
    }
}
