//! Retrieval over a [`QuantizedIndex`]: the bandwidth-bound serving
//! paths at a chosen dtype (DESIGN.md section 15).
//!
//! ## Exact arm: fused range-sharded scan
//!
//! The f64 exact arm materializes a `B × M` score block (GEMM-friendly,
//! but it writes and re-reads 8 bytes per score on top of streaming the
//! panel). The quantized arm instead shards the catalog into fixed
//! [`SCAN_RANGE_ITEMS`]-item ranges and runs one fused
//! [`dt_tensor::quant::scan_top_k`] per `(range, user)` task: each task
//! streams its panel range once, keeps a K-bounded heap, and writes only
//! `K` entries. Partial results merge through the same heap — exact,
//! because the retained top-K set is push-order independent. Tasks are
//! laid out range-major, so at low widths the B users of a block reuse
//! each panel range while it is cache-hot. Chunk geometry derives from
//! `(M, K, B)` only, so results are bit-identical at any thread count —
//! and for `PanelDtype::F64`, bit-identical to the unquantized engine.
//!
//! ## IVF arm: shared probe loop, dtype rerank, opt-in refine
//!
//! Cell ranking keeps the f64 user panel and centroid GEMM (the
//! `N × nlist` part is not where the bytes are), reusing the exact
//! [`IvfScratch`] probe/shortfall loop; only the member rerank runs at
//! the serving dtype. An optional **refine** pass rescores the final ≤ K
//! stripe through the f64 oracle pair kernel — `K` dots per user against
//! the training-precision panels — restoring oracle scores (and their
//! order) on the survivors while the scan that chose them stays cheap.

use dt_tensor::quant;
use dt_tensor::topk::{rank_cmp, select_top_k, BoundedRank, Ranked};

use crate::engine::{TopKBatch, TopKEngine, MAX_BLOCK_USERS};
use crate::index::{ScoringIndex, SeenLists};
use crate::ivf::IvfIndex;
use crate::qindex::QuantizedIndex;
use crate::{IvfScratch, RetrievalMode};

/// Items per fused-scan shard. A shape constant (never a function of the
/// thread count): it fixes the partial-result geometry, and with it the
/// task grid. 8192 items × dim 32 is 256 KiB of f64 panel (32 KiB at
/// i8) — small enough to stay cache-resident across the users of a
/// block, large enough to amortize task hand-off.
pub(crate) const SCAN_RANGE_ITEMS: usize = 8192;

/// Reusable scratch for the quantized retrieval paths. Buffers grow to
/// steady state on the first query and are only rewritten afterwards, so
/// repeated queries through one scratch allocate nothing.
#[derive(Debug, Clone, Default)]
pub struct QuantScratch {
    /// Per-`(range, user)` partial top-K stripes, range-major.
    partials: Vec<Ranked>,
    /// The IVF probe loop's scratch (shared shape with the f64 arm).
    ivf: IvfScratch,
    /// Item ids of the stripe under refine.
    refine_items: Vec<usize>,
    /// Oracle scores of `refine_items` (parallel array).
    refine_scores: Vec<f64>,
}

fn check_refine(index: &QuantizedIndex, oracle: Option<&ScoringIndex>) {
    if let Some(o) = oracle {
        assert!(
            o.n_users() == index.n_users() && o.n_items() == index.n_items(),
            "refine: oracle shape {}x{} vs quantized index {}x{}",
            o.n_users(),
            o.n_items(),
            index.n_users(),
            index.n_items()
        );
        assert_eq!(
            o.dim(),
            index.dim(),
            "refine: oracle dim {} vs quantized index dim {}",
            o.dim(),
            index.dim()
        );
    }
}

/// Rescores the filled prefix of one stripe through the f64 oracle pair
/// kernel and re-sorts it by [`rank_cmp`]. The candidate *set* is
/// unchanged — refine restores training-precision scores (and their
/// order) on the dtype scan's survivors.
fn refine_stripe(
    oracle: &ScoringIndex,
    user: usize,
    stripe: &mut [Ranked],
    n: usize,
    items: &mut Vec<usize>,
    scores: &mut Vec<f64>,
) {
    items.clear();
    items.extend(stripe[..n].iter().map(|r| r.item as usize));
    dt_tensor::scoring::score_user_items_into(
        oracle.user_panel(),
        oracle.item_panel(),
        0..oracle.dim(),
        user,
        items,
        Some(oracle.biases()),
        scores,
    );
    for (slot, &s) in stripe[..n].iter_mut().zip(scores.iter()) {
        slot.score = s;
    }
    // Distinct item ids make rank_cmp a strict total order, so the sort
    // is deterministic regardless of the pre-refine order.
    stripe[..n].sort_unstable_by(rank_cmp);
}

impl TopKEngine {
    /// Quantized exact retrieval: the fused range-sharded scan (see the
    /// module docs). Writes into `out`; with a warmed `scratch`/`out`
    /// pair, steady-state queries allocate nothing. An optional `refine`
    /// oracle rescores each final stripe at f64.
    ///
    /// # Panics
    /// Panics when a user id is out of bounds, `seen` covers a different
    /// user universe than the index, or `refine` disagrees with the
    /// index's shape.
    #[allow(clippy::too_many_arguments)]
    pub fn recommend_quantized_into(
        &self,
        index: &QuantizedIndex,
        users: &[usize],
        k: usize,
        seen: Option<&SeenLists>,
        refine: Option<&ScoringIndex>,
        scratch: &mut QuantScratch,
        out: &mut TopKBatch,
    ) {
        if let Some(s) = seen {
            assert_eq!(
                s.n_users(),
                index.n_users(),
                "recommend_quantized: seen-lists cover {} users, index has {}",
                s.n_users(),
                index.n_users()
            );
        }
        assert!(
            users.iter().all(|&u| u < index.n_users()),
            "recommend_quantized: user id out of bounds for {} users",
            index.n_users()
        );
        check_refine(index, refine);
        out.reset(users.len(), k);
        if users.is_empty() || k == 0 {
            return;
        }
        let m = index.n_items();
        let n_ranges = m.div_ceil(SCAN_RANGE_ITEMS);
        // Budget the partial grid like the f64 engine budgets its score
        // block: `n_ranges × B × K` retained entries per block.
        let block = (self.block_elems() / (n_ranges * k).max(1)).clamp(1, MAX_BLOCK_USERS);
        let biases = Some(index.biases());
        let mut lo = 0;
        while lo < users.len() {
            let hi = (lo + block).min(users.len());
            let block_users = &users[lo..hi];
            let nb = hi - lo;
            scratch.partials.clear();
            scratch
                .partials
                .resize(n_ranges * nb * k, Ranked::TOMBSTONE);
            // One fused scan per (range, user), range-major: consecutive
            // chunks share a panel range across the block's users.
            dt_parallel::for_each_chunk(&mut scratch.partials, k, |ci, slot| {
                let (r, j) = (ci / nb, ci % nb);
                let user = block_users[j];
                let exclude = seen.map_or(&[][..], |s| s.seen(user));
                let start = r * SCAN_RANGE_ITEMS;
                let end = (start + SCAN_RANGE_ITEMS).min(m);
                quant::scan_top_k(
                    index.user_panel_q(),
                    index.item_panel_q(),
                    user,
                    start..end,
                    exclude,
                    biases,
                    slot,
                );
            });
            // Merge the n_ranges partial stripes of each user through the
            // same bounded heap — exact by push-order independence.
            let partials = &scratch.partials;
            let stripes = out.stripes_mut(lo, hi);
            dt_parallel::for_each_chunk(stripes, k, |j, slot| {
                let mut rank = BoundedRank::new(slot);
                for r in 0..n_ranges {
                    for e in &partials[(r * nb + j) * k..][..k] {
                        if e.is_tombstone() {
                            break;
                        }
                        rank.push(*e);
                    }
                }
                rank.finish();
            });
            lo = hi;
        }
        out.recount();
        if let Some(oracle) = refine {
            for (j, &user) in users.iter().enumerate() {
                let n = out.user(j).len();
                refine_stripe(
                    oracle,
                    user,
                    out.user_mut(j),
                    n,
                    &mut scratch.refine_items,
                    &mut scratch.refine_scores,
                );
            }
        }
    }

    /// [`TopKEngine::recommend_quantized_into`] returning a fresh batch.
    #[must_use]
    pub fn recommend_quantized(
        &self,
        index: &QuantizedIndex,
        users: &[usize],
        k: usize,
        seen: Option<&SeenLists>,
    ) -> TopKBatch {
        let mut scratch = QuantScratch::default();
        let mut out = TopKBatch::new();
        self.recommend_quantized_into(index, users, k, seen, None, &mut scratch, &mut out);
        out
    }

    /// Quantized IVF retrieval: f64 cell ranking over the retained user
    /// panel (bit-identical probe choices and shortfall widening to the
    /// unquantized IVF arm), dtype rerank of the gathered candidates,
    /// optional f64 refine of the final stripe.
    ///
    /// # Panics
    /// Panics when the IVF index does not match `index` (catalog size or
    /// panel width), a user id is out of bounds, `seen` covers a
    /// different user universe than the index, or `refine` disagrees
    /// with the index's shape.
    #[allow(clippy::too_many_arguments)]
    pub fn recommend_ivf_quantized_into(
        &self,
        index: &QuantizedIndex,
        ivf: &IvfIndex,
        nprobe: usize,
        users: &[usize],
        k: usize,
        seen: Option<&SeenLists>,
        refine: Option<&ScoringIndex>,
        scratch: &mut QuantScratch,
        out: &mut TopKBatch,
    ) {
        assert_eq!(
            ivf.n_items(),
            index.n_items(),
            "recommend_ivf_quantized: IVF built over {} items, index has {}",
            ivf.n_items(),
            index.n_items()
        );
        assert_eq!(
            ivf.dim(),
            index.dim(),
            "recommend_ivf_quantized: IVF built at dim {}, index has {}",
            ivf.dim(),
            index.dim()
        );
        if let Some(s) = seen {
            assert_eq!(
                s.n_users(),
                index.n_users(),
                "recommend_ivf_quantized: seen-lists cover {} users, index has {}",
                s.n_users(),
                index.n_users()
            );
        }
        check_refine(index, refine);
        out.reset(users.len(), k);
        if users.is_empty() || k == 0 {
            return;
        }
        let nlist = ivf.nlist();
        let block = (self.block_elems() / nlist.max(1)).clamp(1, MAX_BLOCK_USERS);
        let biases = Some(index.biases());
        let mut lo = 0;
        while lo < users.len() {
            let hi = (lo + block).min(users.len());
            let block_users = &users[lo..hi];
            // Cell affinities stay f64: same GEMM, same panel, same cells
            // as the unquantized IVF arm.
            let affinity = dt_tensor::scoring::score_user_block(
                index.user_panel(),
                ivf.centroids(),
                block_users,
                None,
            );
            for (j, &user) in block_users.iter().enumerate() {
                scratch
                    .ivf
                    .fill_cell_scores(affinity.row(j), ivf.centroid_bias());
                let exclude = seen.map_or(&[][..], |s| s.seen(user));
                scratch.ivf.gather_candidates(ivf, nprobe, k, exclude);
                quant::score_user_items_into(
                    index.user_panel_q(),
                    index.item_panel_q(),
                    user,
                    &scratch.ivf.cand,
                    biases,
                    &mut scratch.ivf.scores,
                );
                scratch.ivf.sel.clear();
                scratch.ivf.sel.resize(k, Ranked::TOMBSTONE);
                let n = select_top_k(&scratch.ivf.scores, &[], &mut scratch.ivf.sel);
                let stripe = out.user_mut(lo + j);
                for (slot, r) in stripe.iter_mut().zip(&scratch.ivf.sel[..n]) {
                    *slot = Ranked {
                        item: scratch.ivf.cand[r.item as usize] as u32,
                        score: r.score,
                    };
                }
                if let Some(oracle) = refine {
                    refine_stripe(
                        oracle,
                        user,
                        stripe,
                        n,
                        &mut scratch.refine_items,
                        &mut scratch.refine_scores,
                    );
                }
                out.set_count(lo + j, n);
            }
            affinity.recycle();
            lo = hi;
        }
    }

    /// Dispatches on [`TopKEngine::mode`] over a quantized index — the
    /// dtype twin of [`TopKEngine::retrieve_into`]. The exact arm
    /// ignores `ivf`; the IVF arm requires a companion index built with
    /// the matching `nlist`. `refine` applies to both arms.
    ///
    /// # Panics
    /// Panics in IVF mode when `ivf` is `None` or was built with a
    /// different `nlist` than the mode says (after clamping to the
    /// catalog size), plus everything the two arms panic on.
    #[allow(clippy::too_many_arguments)]
    pub fn retrieve_quantized_into(
        &self,
        index: &QuantizedIndex,
        ivf: Option<&IvfIndex>,
        users: &[usize],
        k: usize,
        seen: Option<&SeenLists>,
        refine: Option<&ScoringIndex>,
        scratch: &mut QuantScratch,
        out: &mut TopKBatch,
    ) {
        match self.mode() {
            RetrievalMode::Exact => {
                self.recommend_quantized_into(index, users, k, seen, refine, scratch, out);
            }
            RetrievalMode::Ivf { nlist, nprobe } => {
                assert!(
                    ivf.is_some(),
                    "retrieve_quantized: RetrievalMode::Ivf needs a companion IvfIndex"
                );
                let Some(ivf) = ivf else { return };
                assert_eq!(
                    ivf.nlist(),
                    nlist.min(index.n_items()),
                    "retrieve_quantized: IvfIndex has {} cells, mode says nlist {}",
                    ivf.nlist(),
                    nlist
                );
                self.recommend_ivf_quantized_into(
                    index, ivf, nprobe, users, k, seen, refine, scratch, out,
                );
            }
        }
    }
}
