//! Deterministic Lloyd's k-means: the coarse quantizer behind [`crate::IvfIndex`].
//!
//! Std-only and bit-reproducible by construction:
//!
//! * **SplitMix64-seeded init** — the initial codebook is `k` distinct
//!   panel rows drawn by a partial Fisher–Yates shuffle over a SplitMix64
//!   stream, so the same `(seed, shape)` always picks the same rows;
//! * **fixed iteration count** — no data-dependent early exit, so every
//!   run executes the same arithmetic;
//! * **pool-parallel assignment through the blocked GEMM**
//!   ([`dt_tensor::cluster::assign_nearest`]), deterministic for any
//!   `DT_NUM_THREADS`;
//! * **sequential ascending update** — per-cluster sums accumulate rows
//!   in ascending row order on the calling thread, one fixed float
//!   association order;
//! * **empty clusters keep their previous centroid** (no reseeding), so
//!   degenerate panels — e.g. every item identical — are total: all rows
//!   collapse onto the lowest-id centroid and the rest go unused.
//!
//! Training may run on a deterministic strided subsample
//! ([`KmeansConfig::train_cap`]) — standard coarse-quantizer practice —
//! but the *final* assignment always covers the full panel.

use dt_tensor::cluster::assign_nearest;
use dt_tensor::Tensor;

/// Hyper-parameters of one k-means run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KmeansConfig {
    /// Number of centroids requested; clamped to the panel height.
    pub k: usize,
    /// Lloyd iterations, executed exactly (no early exit).
    pub iters: usize,
    /// SplitMix64 seed for the initial codebook.
    pub seed: u64,
    /// Train on at most this many rows (deterministic stride over the
    /// panel); `0` trains on every row. The final assignment is always
    /// over the full panel.
    pub train_cap: usize,
}

impl Default for KmeansConfig {
    fn default() -> Self {
        Self {
            k: 256,
            iters: 8,
            seed: 0x5EED_1DF5,
            train_cap: 1 << 17,
        }
    }
}

/// A trained codebook: `k_eff × dim` centroids plus the nearest-centroid
/// id of every panel row.
#[derive(Debug, Clone)]
pub struct Kmeans {
    /// The centroid panel (`k_eff` rows — [`KmeansConfig::k`] clamped to
    /// the input height).
    pub centroids: Tensor,
    /// `assignments[i]` = centroid id of panel row `i`.
    pub assignments: Vec<u32>,
}

/// SplitMix64: the 64-bit mixing PRNG (Steele et al., "Fast splittable
/// pseudorandom number generators") — tiny, full-period, seed-robust.
#[derive(Debug, Clone, Copy)]
pub struct SplitMix64(pub u64);

impl SplitMix64 {
    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `0..n` by multiply-shift (n must be positive).
    pub fn next_below(&mut self, n: usize) -> usize {
        debug_assert!(n > 0, "SplitMix64::next_below: empty range");
        (((u128::from(self.next_u64()) * n as u128) >> 64) as u64) as usize
    }
}

/// `k` distinct indices from `0..n` via a partial Fisher–Yates shuffle
/// (sparse swap map, O(k) memory). Deterministic in `(seed, n, k)`.
fn distinct_indices(rng: &mut SplitMix64, n: usize, k: usize) -> Vec<usize> {
    debug_assert!(k <= n);
    let mut swaps: std::collections::HashMap<usize, usize> = std::collections::HashMap::new();
    let mut out = Vec::with_capacity(k);
    for i in 0..k {
        let j = i + rng.next_below(n - i);
        let pick = *swaps.get(&j).unwrap_or(&j);
        let cur_i = *swaps.get(&i).unwrap_or(&i);
        swaps.insert(j, cur_i);
        out.push(pick);
    }
    out
}

/// Runs Lloyd's k-means over the rows of `panel`.
///
/// # Panics
/// Panics when the panel is empty or `cfg.k == 0`.
#[must_use]
pub fn run(panel: &Tensor, cfg: &KmeansConfig) -> Kmeans {
    let n = panel.rows();
    let dim = panel.cols();
    assert!(n > 0, "kmeans: empty panel");
    assert!(cfg.k > 0, "kmeans: k must be positive");
    let k = cfg.k.min(n);

    // Initial codebook: k distinct panel rows.
    let mut rng = SplitMix64(cfg.seed);
    let init = distinct_indices(&mut rng, n, k);
    let mut centroids = panel.gather_rows(&init).pooled_clone();

    // Deterministic strided training subsample.
    let train: Tensor;
    let train_panel = if cfg.train_cap > 0 && n > cfg.train_cap {
        let idx: Vec<usize> = (0..cfg.train_cap).map(|i| i * n / cfg.train_cap).collect();
        train = panel.gather_rows(&idx).pooled_clone();
        &train
    } else {
        panel
    };

    let mut assign: Vec<u32> = Vec::new();
    let mut counts: Vec<u64> = vec![0; k];
    for _ in 0..cfg.iters {
        assign_nearest(train_panel, &centroids, &mut assign);
        let mut sums = Tensor::pooled_zeros(k, dim);
        counts.fill(0);
        for (r, &a) in assign.iter().enumerate() {
            counts[a as usize] += 1;
            for (s, v) in sums.row_mut(a as usize).iter_mut().zip(train_panel.row(r)) {
                *s += v;
            }
        }
        for (c, &count) in counts.iter().enumerate() {
            if count > 0 {
                let inv = 1.0 / count as f64;
                for (dst, s) in centroids.row_mut(c).iter_mut().zip(sums.row(c)) {
                    *dst = s * inv;
                }
            }
            // count == 0: keep the previous centroid (empty cell).
        }
        sums.recycle();
    }

    let mut assignments = Vec::new();
    assign_nearest(panel, &centroids, &mut assignments);
    Kmeans {
        centroids,
        assignments,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn panel(rows: usize, cols: usize, seed: u64) -> Tensor {
        let mut rng = SplitMix64(seed);
        Tensor::from_fn(rows, cols, |_, _| {
            rng.next_u64() as f64 / u64::MAX as f64 - 0.5
        })
    }

    #[test]
    fn splitmix_reference_values() {
        // First outputs for seed 1234567 (published SplitMix64 vectors).
        let mut rng = SplitMix64(1_234_567);
        assert_eq!(rng.next_u64(), 6_457_827_717_110_365_317);
        assert_eq!(rng.next_u64(), 3_203_168_211_198_807_973);
    }

    #[test]
    fn distinct_indices_are_distinct_and_in_range() {
        let mut rng = SplitMix64(99);
        for (n, k) in [(10, 10), (100, 7), (3, 1), (5, 5)] {
            let idx = distinct_indices(&mut rng, n, k);
            assert_eq!(idx.len(), k);
            assert!(idx.iter().all(|&i| i < n));
            let mut sorted = idx.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), k, "duplicates in {idx:?}");
        }
    }

    #[test]
    fn same_seed_same_result_different_seed_differs() {
        let p = panel(120, 5, 3);
        let cfg = KmeansConfig {
            k: 8,
            iters: 5,
            seed: 42,
            train_cap: 0,
        };
        let a = run(&p, &cfg);
        let b = run(&p, &cfg);
        assert_eq!(a.centroids, b.centroids);
        assert_eq!(a.assignments, b.assignments);
        let c = run(&p, &KmeansConfig { seed: 43, ..cfg });
        assert_ne!(a.assignments, c.assignments);
    }

    #[test]
    fn assignments_cover_every_row_and_valid_ids() {
        let p = panel(200, 4, 7);
        let km = run(
            &p,
            &KmeansConfig {
                k: 16,
                iters: 4,
                seed: 1,
                train_cap: 0,
            },
        );
        assert_eq!(km.assignments.len(), 200);
        assert!(km.assignments.iter().all(|&a| (a as usize) < 16));
        assert_eq!(km.centroids.rows(), 16);
        assert_eq!(km.centroids.cols(), 4);
    }

    #[test]
    fn k_clamps_to_panel_height() {
        let p = panel(3, 2, 5);
        let km = run(
            &p,
            &KmeansConfig {
                k: 10,
                iters: 2,
                seed: 1,
                train_cap: 0,
            },
        );
        assert_eq!(km.centroids.rows(), 3);
    }

    #[test]
    fn identical_rows_collapse_to_one_cluster() {
        // Degenerate panel: every row equal. All assignments land on the
        // lowest centroid id; the rest of the codebook goes unused.
        let p = Tensor::from_fn(50, 3, |_, j| j as f64 + 1.0);
        let km = run(
            &p,
            &KmeansConfig {
                k: 4,
                iters: 3,
                seed: 9,
                train_cap: 0,
            },
        );
        assert!(
            km.assignments.iter().all(|&a| a == 0),
            "{:?}",
            km.assignments
        );
    }

    #[test]
    fn well_separated_blobs_are_recovered() {
        // Two tight blobs far apart: with k = 2 every blob maps to one
        // cluster and the two clusters differ.
        let p = Tensor::from_fn(60, 2, |i, j| {
            let base = if i < 30 { 0.0 } else { 100.0 };
            base + ((i * 7 + j) % 5) as f64 * 0.01
        });
        let km = run(
            &p,
            &KmeansConfig {
                k: 2,
                iters: 6,
                seed: 3,
                train_cap: 0,
            },
        );
        let first = km.assignments[0];
        let second = km.assignments[59];
        assert_ne!(first, second);
        assert!(km.assignments[..30].iter().all(|&a| a == first));
        assert!(km.assignments[30..].iter().all(|&a| a == second));
    }

    #[test]
    fn train_cap_subsample_still_assigns_full_panel() {
        let p = panel(500, 3, 11);
        let km = run(
            &p,
            &KmeansConfig {
                k: 6,
                iters: 3,
                seed: 5,
                train_cap: 64,
            },
        );
        assert_eq!(km.assignments.len(), 500);
    }

    #[test]
    #[should_panic(expected = "empty panel")]
    fn empty_panel_panics() {
        let _ = run(&Tensor::zeros(0, 3), &KmeansConfig::default());
    }
}
