//! Item-sharded exact retrieval: per-shard partial top-K merged by the
//! shared bounded-heap kernel (DESIGN.md section 16).
//!
//! The exact arm scores a user block against the whole catalog in one
//! GEMM — great throughput per query batch, but one query occupies the
//! whole pool for the full catalog pass. Under concurrent load the
//! serving front-end (`dt-load`) wants finer work units: this module
//! splits the catalog into `S` **contiguous row ranges** and scores each
//! `(shard, user)` pair as an independent pool task into a per-shard
//! partial top-K heap, merging the `S` partial stripes per user through
//! the same [`BoundedRank`] kernel.
//!
//! ## Bit-identity argument
//!
//! The sharded output equals the unsharded engine's bit for bit, for any
//! shard count and any `DT_NUM_THREADS`:
//!
//! 1. **Scores.** Each shard scores items through the same
//!    sequential-over-dim dot and `((dot + bᵤ) + bᵢ) + µ` association
//!    order as the pair kernel ([`dt_tensor::scoring`]), which is pinned
//!    bit-identical to the block GEMM the unsharded engine uses — so
//!    every candidate's score is the same `f64` in both paths.
//! 2. **Geometry.** Shard boundaries derive from `(M, S)` only
//!    ([`shard_range`]) — never from the thread count — so the task grid
//!    and each partial's candidate set are fixed per query shape.
//! 3. **Selection.** [`BoundedRank`] retains a pure function of the
//!    offered candidate *set* (score descending, item id ascending, a
//!    strict total order), so per-shard partials then a merge retain
//!    exactly the global top-K, and the merge tie-break equals the
//!    global item-id order.
//!
//! The oracle tests (`shard_oracle.rs`) pin this equality across shard
//! counts × K × widths × pooled-vs-fresh.

use std::ops::Range;

use dt_tensor::topk::{BoundedRank, Ranked};

use crate::engine::{TopKBatch, TopKEngine, MAX_BLOCK_USERS};
use crate::index::{ScoringIndex, SeenLists};

/// The row range of shard `s` of `n_shards` over an `m`-item catalog:
/// contiguous, ascending, balanced to within one item. A pure function
/// of `(m, n_shards, s)` — shard geometry never depends on the thread
/// count, which is half the bit-identity argument (module docs).
///
/// # Panics
/// Panics when `n_shards` is zero or `s >= n_shards`.
#[must_use]
pub fn shard_range(m: usize, n_shards: usize, s: usize) -> Range<usize> {
    assert!(n_shards > 0, "shard_range: n_shards must be positive");
    assert!(
        s < n_shards,
        "shard_range: shard {s} out of bounds for {n_shards} shards"
    );
    let base = m / n_shards;
    let rem = m % n_shards;
    let start = s * base + s.min(rem);
    let len = base + usize::from(s < rem);
    start..start + len
}

/// Reusable scratch for the sharded arm: the `S × B × K` partial-stripe
/// grid, shard-major. Grows to steady state on the first query and is
/// only rewritten afterwards, so repeated queries allocate nothing.
#[derive(Debug, Clone, Default)]
pub struct ShardScratch {
    partials: Vec<Ranked>,
}

/// Scores one user against the contiguous item range `items` and keeps
/// the best `slot.len()` in `slot` (best first, tombstone-padded) — the
/// f64 twin of the quantized fused scan. Score arithmetic matches the
/// pair kernel exactly: sequential dot over the panel width, then
/// `((dot + bᵤ) + bᵢ) + µ`.
fn scan_shard_top_k(
    index: &ScoringIndex,
    user: usize,
    items: Range<usize>,
    exclude: &[u32],
    slot: &mut [Ranked],
) {
    let dim = index.dim();
    let pu = index.user_panel().row(user);
    let qd = index.item_panel().data();
    let biases = index.biases();
    let bu = biases.user[user];
    // Narrow the exclude list to the scanned range once.
    let e_lo = exclude.partition_point(|&e| (e as usize) < items.start);
    let excl = &exclude[e_lo..];
    let mut rank = BoundedRank::new(slot);
    let mut e = 0usize;
    for i in items {
        let item = i as u32;
        while e < excl.len() && excl[e] < item {
            e += 1;
        }
        if e < excl.len() && excl[e] == item {
            continue;
        }
        let qi = &qd[i * dim..][..dim];
        let mut dot = 0.0;
        for (a, b) in pu.iter().zip(qi) {
            dot += a * b;
        }
        rank.push(Ranked {
            item,
            score: ((dot + bu) + biases.item[i]) + biases.global,
        });
    }
    rank.finish();
}

impl TopKEngine {
    /// Sharded exact retrieval: the catalog splits into `n_shards`
    /// contiguous ranges, every `(shard, user)` pair runs as one pool
    /// task keeping a partial top-K, and the partials merge per user
    /// through the same bounded heap — bit-identical to
    /// [`TopKEngine::recommend_into`] at any shard count and thread
    /// width (module docs). Writes into `out`; with a warmed
    /// `scratch`/`out` pair, steady-state queries allocate nothing.
    ///
    /// # Panics
    /// Panics when `n_shards` is zero, a user id is out of bounds, or
    /// `seen` covers a different user universe than the index.
    #[allow(clippy::too_many_arguments)]
    pub fn recommend_sharded_into(
        &self,
        index: &ScoringIndex,
        n_shards: usize,
        users: &[usize],
        k: usize,
        seen: Option<&SeenLists>,
        scratch: &mut ShardScratch,
        out: &mut TopKBatch,
    ) {
        assert!(n_shards > 0, "recommend_sharded: n_shards must be positive");
        if let Some(s) = seen {
            assert_eq!(
                s.n_users(),
                index.n_users(),
                "recommend_sharded: seen-lists cover {} users, index has {}",
                s.n_users(),
                index.n_users()
            );
        }
        assert!(
            users.iter().all(|&u| u < index.n_users()),
            "recommend_sharded: user id out of bounds for {} users",
            index.n_users()
        );
        out.reset(users.len(), k);
        if users.is_empty() || k == 0 {
            return;
        }
        let m = index.n_items();
        // Budget the partial grid like the quantized fused scan budgets
        // its: `S × B × K` retained entries per block.
        let block = (self.block_elems() / (n_shards * k).max(1)).clamp(1, MAX_BLOCK_USERS);
        let mut lo = 0;
        while lo < users.len() {
            let hi = (lo + block).min(users.len());
            let block_users = &users[lo..hi];
            let nb = hi - lo;
            scratch.partials.clear();
            scratch
                .partials
                .resize(n_shards * nb * k, Ranked::TOMBSTONE);
            // One fused scan per (shard, user), shard-major: consecutive
            // chunks share a panel range across the block's users.
            dt_parallel::for_each_chunk(&mut scratch.partials, k, |ci, slot| {
                let (s, j) = (ci / nb, ci % nb);
                let user = block_users[j];
                let exclude = seen.map_or(&[][..], |se| se.seen(user));
                scan_shard_top_k(index, user, shard_range(m, n_shards, s), exclude, slot);
            });
            // Merge the n_shards partial stripes of each user through
            // the same bounded heap — exact by push-order independence.
            let partials = &scratch.partials;
            let stripes = out.stripes_mut(lo, hi);
            dt_parallel::for_each_chunk(stripes, k, |j, slot| {
                let mut rank = BoundedRank::new(slot);
                for s in 0..n_shards {
                    for e in &partials[(s * nb + j) * k..][..k] {
                        if e.is_tombstone() {
                            break;
                        }
                        rank.push(*e);
                    }
                }
                rank.finish();
            });
            lo = hi;
        }
        out.recount();
    }

    /// [`TopKEngine::recommend_sharded_into`] returning a fresh batch.
    #[must_use]
    pub fn recommend_sharded(
        &self,
        index: &ScoringIndex,
        n_shards: usize,
        users: &[usize],
        k: usize,
        seen: Option<&SeenLists>,
    ) -> TopKBatch {
        let mut scratch = ShardScratch::default();
        let mut out = TopKBatch::new();
        self.recommend_sharded_into(index, n_shards, users, k, seen, &mut scratch, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_ranges_partition_the_catalog() {
        for (m, s_count) in [(10, 3), (7, 7), (4, 9), (0, 2), (1_000, 16)] {
            let mut next = 0usize;
            for s in 0..s_count {
                let r = shard_range(m, s_count, s);
                assert_eq!(r.start, next, "m={m} s={s}");
                assert!(r.len() <= m / s_count + 1);
                next = r.end;
            }
            assert_eq!(next, m, "m={m} S={s_count}");
        }
    }

    #[test]
    fn shard_lengths_are_balanced() {
        let lens: Vec<usize> = (0..7).map(|s| shard_range(23, 7, s).len()).collect();
        assert_eq!(lens, vec![4, 4, 3, 3, 3, 3, 3]);
    }

    #[test]
    #[should_panic(expected = "n_shards must be positive")]
    fn zero_shards_panic() {
        let _ = shard_range(5, 0, 0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn shard_index_beyond_count_panics() {
        let _ = shard_range(5, 2, 2);
    }
}
