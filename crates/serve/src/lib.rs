//! # dt-serve
//!
//! Batched full-catalog top-K retrieval — the serving layer of the
//! `disrec` workspace (DESIGN.md section 12).
//!
//! Training produces MF-family models whose score is a dot product plus
//! biases; serving asks the converse question: *given a user, which K of
//! the M catalog items score highest?* The paper's own evaluation
//! protocol (NDCG@K / Recall@K over the unbiased test log, Table IV) is
//! exactly this workload, and the ROADMAP north star — heavy traffic over
//! millions of items — makes it the inference hot path.
//!
//! The pipeline:
//!
//! 1. [`ScoringIndex`] — contiguous row-major user/item panels plus bias
//!    vectors, extracted once from a trained model (primary-part slices
//!    for the DT methods, whose rating head only sees columns `0..A`).
//! 2. Queries score a **block** of users against all M items through the
//!    blocked `dt-tensor` GEMM kernels with pooled buffers: zero
//!    steady-state allocations per query batch.
//! 3. Each user's top-K is found by bounded-heap partial selection
//!    ([`dt_tensor::topk`]) in `O(M + K log K)` instead of an
//!    `O(M log M)` full sort, with optional exclusion of already-seen
//!    items via per-user sorted [`SeenLists`].
//!
//! Every stage is bit-identical for any `DT_NUM_THREADS` and for pooled
//! vs fresh buffers: chunk geometry derives from shapes only, and ties
//! break by ascending item id (never by arrival order).
//!
//! For catalogs where even one blocked pass over all M items is too slow,
//! the [`IvfIndex`] coarse quantizer (DESIGN.md section 13) trades a
//! little recall for sublinear candidate generation: deterministic
//! k-means cells over the bias-augmented item panel, probed per user and
//! reranked **exactly** through the same scoring kernels —
//! [`RetrievalMode::Ivf`] with a shortfall fallback that degrades to
//! exact rather than under-filling a stripe.
//!
//! The exact scan is memory-bandwidth-bound at catalog scale, so the
//! index can also be re-exported at a lossy serving dtype (DESIGN.md
//! section 15): [`ScoringIndex::quantize`] produces a [`QuantizedIndex`]
//! whose panels store `f64`, `f32` or per-row-scaled `i8`
//! ([`PanelDtype`]), served by the same engine through
//! [`TopKEngine::retrieve_quantized_into`] — a fused range-sharded
//! scan-and-select for the exact arm, and the shared IVF probe loop with
//! a dtype rerank (plus an opt-in f64 refine pass) for the IVF arm. The
//! `F64` dtype is bit-identical to the unquantized path, so every lossy
//! dtype's accuracy bill can be measured against it.
//!
//! Under concurrent load (the `dt-load` replay harness, DESIGN.md
//! section 16) the exact arm can also run **item-sharded**
//! ([`TopKEngine::recommend_sharded_into`]): the catalog splits into S
//! contiguous ranges scored as independent pool tasks into per-shard
//! partial top-K heaps, merged per user by the same bounded-heap kernel
//! — bit-identical to the unsharded engine because shard geometry
//! derives from `(M, S)` only and the tie-break is the global item-id
//! order ([`shard_range`]).

#![forbid(unsafe_code)]

mod engine;
mod index;
mod ivf;
pub mod kmeans;
mod qengine;
mod qindex;
mod shard;

pub use dt_tensor::quant::{Panel, PanelDtype};
pub use dt_tensor::topk::Ranked;
pub use engine::{IvfScratch, RetrievalMode, TopKBatch, TopKEngine, DEFAULT_BLOCK_ELEMS};
pub use index::{ScoringIndex, SeenLists};
pub use ivf::{IvfIndex, IvfParams};
pub use qengine::QuantScratch;
pub use qindex::QuantizedIndex;
pub use shard::{shard_range, ShardScratch};
