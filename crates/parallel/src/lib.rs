//! # dt-parallel
//!
//! The workspace-shared worker pool behind every parallel code path in
//! `disrec`: the blocked GEMM kernels in `dt-tensor`, the elementwise
//! backward-sweep helpers, and the experiment sweeps in `dt-experiments`.
//!
//! ## Design
//!
//! * **One lazily-initialised pool per process.** The first parallel call
//!   spawns `width - 1` helper threads (the calling thread is always the
//!   `width`-th participant), where `width` comes from the `DT_NUM_THREADS`
//!   environment variable or, when unset, from
//!   [`std::thread::available_parallelism`]. `DT_NUM_THREADS=1` disables
//!   threading entirely — every primitive degrades to an inline loop —
//!   which is the debugging / CI-determinism mode.
//! * **Scoped execution without `'static` closures.** [`par_tasks`] runs a
//!   batch of borrowing closures and only returns once every task has
//!   finished (or panicked), so borrows of the caller's stack are sound.
//!   Internally the non-`'static` tasks are lifetime-erased and handed to
//!   the long-lived workers; the completion latch is what makes this safe.
//! * **No nested parallelism.** Pool workers and [`run_sequential`] sections
//!   mark the thread as sequential; any parallel primitive invoked there
//!   runs inline. This prevents both oversubscription (a sweep worker
//!   spawning kernel subtasks) and queue deadlock.
//! * **Determinism is the caller's contract, and the primitives make it
//!   cheap to honour.** [`par_rows`] hands out disjoint contiguous row
//!   ranges (each output row is written by exactly one task) and
//!   [`for_each_chunk`] derives chunk boundaries from the chunk length
//!   alone — never from the thread count — so a kernel that fixes its
//!   reduction order per chunk produces bit-identical results for any
//!   `DT_NUM_THREADS`.
//!
//! The implementation is dependency-free (std mutex/condvar/mpsc only):
//! the pool lock is touched a handful of times per *kernel call*, not per
//! element, so a faster mutex would be unobservable, and zero dependencies
//! keep the crate buildable everywhere the toolchain is.
//!
//! ## Example
//!
//! ```
//! let mut out = vec![0.0f64; 1024];
//! // Square each element in parallel; chunk geometry is independent of
//! // the worker count, so any DT_NUM_THREADS yields the same bytes.
//! dt_parallel::for_each_chunk(&mut out, 128, |chunk_idx, chunk| {
//!     for (i, v) in chunk.iter_mut().enumerate() {
//!         let flat = chunk_idx * 128 + i;
//!         *v = (flat * flat) as f64;
//!     }
//! });
//! assert_eq!(out[33], 33.0 * 33.0);
//! ```

// `unsafe` here is audited (lint R1): every block carries a SAFETY comment,
// and code inside `unsafe fn` still has to spell out its unsafe operations.
#![deny(unsafe_op_in_unsafe_fn)]

mod pool;

pub use pool::{
    effective_threads, for_each_chunk, is_sequential, num_threads, par_indices, par_rows,
    par_tasks, run_sequential, with_thread_limit,
};
