//! The process-wide worker pool and the scoped data-parallel primitives.

use std::cell::Cell;
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError};

/// A lifetime-erased unit of work handed to the long-lived workers.
type Job = Box<dyn FnOnce() + Send + 'static>;

struct Pool {
    sender: mpsc::Sender<Job>,
    width: usize,
}

static POOL: OnceLock<Pool> = OnceLock::new();

thread_local! {
    /// Set on pool workers and inside [`run_sequential`] sections: every
    /// parallel primitive on this thread degrades to an inline loop.
    static SEQUENTIAL: Cell<bool> = const { Cell::new(false) };
    /// Per-thread override of the task-partition width (0 = pool width).
    static LIMIT: Cell<usize> = const { Cell::new(0) };
}

/// Locks ignoring poisoning: tasks are executed under `catch_unwind`, so a
/// poisoned pool lock can only mean a panic we are already propagating.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

fn default_width() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

fn configured_width() -> usize {
    match std::env::var("DT_NUM_THREADS") {
        Ok(raw) => match raw.trim().parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => {
                use std::io::Write as _;
                let _ = writeln!(
                    std::io::stderr(),
                    "dt-parallel: ignoring invalid DT_NUM_THREADS={raw:?}"
                );
                default_width()
            }
        },
        Err(_) => default_width(),
    }
}

/// The shared pool, spawning its workers on first use. The calling thread
/// always participates in scoped work, so only `width - 1` threads are
/// spawned; `width == 1` spawns none and keeps the process single-threaded.
fn pool() -> &'static Pool {
    POOL.get_or_init(|| {
        let width = configured_width();
        let (sender, receiver) = mpsc::channel::<Job>();
        let receiver = Arc::new(Mutex::new(receiver));
        for worker in 1..width {
            let rx = Arc::clone(&receiver);
            std::thread::Builder::new()
                .name(format!("dt-parallel-{worker}"))
                .spawn(move || {
                    SEQUENTIAL.with(|s| s.set(true));
                    loop {
                        // Jobs are participation closures that never unwind
                        // (task panics are caught and stashed by the scope),
                        // so the worker loop survives any workload.
                        let job = { lock(&rx).recv() };
                        match job {
                            Ok(job) => job(),
                            Err(_) => return, // channel closed: process exit
                        }
                    }
                })
                // lint: allow(r10): one-time pool construction — a failed worker spawn has no caller to propagate to
                .expect("dt-parallel: failed to spawn worker thread");
        }
        Pool { sender, width }
    })
}

/// The configured pool width: `DT_NUM_THREADS` when set (minimum 1),
/// otherwise [`std::thread::available_parallelism`].
#[must_use]
pub fn num_threads() -> usize {
    pool().width
}

/// Returns `true` when parallel primitives on this thread run inline —
/// on a pool worker, inside [`run_sequential`], or when the pool width is 1.
#[must_use]
pub fn is_sequential() -> bool {
    SEQUENTIAL.with(Cell::get) || num_threads() == 1
}

/// The number of tasks a partitioning primitive will create right now:
/// 1 in sequential context, otherwise the [`with_thread_limit`] override or
/// the pool width. A limit *above* the pool width is honoured — the extra
/// tasks queue on the existing workers — which lets tests exercise
/// multi-task partitions on small machines.
#[must_use]
pub fn effective_threads() -> usize {
    if SEQUENTIAL.with(Cell::get) {
        return 1;
    }
    let limit = LIMIT.with(Cell::get);
    if limit > 0 {
        limit
    } else {
        num_threads()
    }
}

/// Restores a thread-local `Cell` on drop, so the guards below are
/// panic-safe.
struct Restore<T: Copy + 'static> {
    cell: &'static std::thread::LocalKey<Cell<T>>,
    prev: T,
}

impl<T: Copy + 'static> Drop for Restore<T> {
    fn drop(&mut self) {
        self.cell.with(|c| c.set(self.prev));
    }
}

/// Runs `f` with parallelism disabled on this thread: every primitive
/// invoked inside (however deeply) executes inline. Used by sweep workers
/// to keep coarse-grained job parallelism from nesting with kernel
/// parallelism, and by determinism tests.
pub fn run_sequential<R>(f: impl FnOnce() -> R) -> R {
    let prev = SEQUENTIAL.with(|s| s.replace(true));
    let _restore = Restore {
        cell: &SEQUENTIAL,
        prev,
    };
    f()
}

/// Runs `f` with the task-partition width pinned to `limit` on this thread
/// (`0` restores the pool default). Does not resize the pool — only how
/// many tasks the partitioning primitives create — so kernels whose chunk
/// geometry is already thread-count independent produce identical bytes
/// under any limit; this is what the determinism tests sweep over.
pub fn with_thread_limit<R>(limit: usize, f: impl FnOnce() -> R) -> R {
    let prev = LIMIT.with(|s| s.replace(limit));
    let _restore = Restore { cell: &LIMIT, prev };
    f()
}

/// Shared state of one `par_tasks` invocation.
struct Scope {
    /// Lifetime-erased tasks; `None` once claimed.
    tasks: Mutex<Vec<Option<Job>>>,
    /// Next task index to claim.
    cursor: AtomicUsize,
    total: usize,
    /// Number of tasks that finished (successfully or by panic).
    done: Mutex<usize>,
    all_done: Condvar,
    /// First panic payload observed, rethrown on the calling thread.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

impl Scope {
    /// Claims and runs tasks until none remain. Runs with the sequential
    /// marker set, so tasks cannot nest parallelism.
    fn work(&self) {
        let prev = SEQUENTIAL.with(|s| s.replace(true));
        let _restore = Restore {
            cell: &SEQUENTIAL,
            prev,
        };
        loop {
            let i = self.cursor.fetch_add(1, Ordering::Relaxed);
            if i >= self.total {
                return;
            }
            let task = lock(&self.tasks)[i].take();
            if let Some(task) = task {
                if let Err(payload) = catch_unwind(AssertUnwindSafe(task)) {
                    lock(&self.panic).get_or_insert(payload);
                }
                let mut done = lock(&self.done);
                *done += 1;
                if *done == self.total {
                    self.all_done.notify_all();
                }
            }
        }
    }

    /// Blocks until every task has finished.
    fn wait(&self) {
        let mut done = lock(&self.done);
        while *done < self.total {
            done = self
                .all_done
                .wait(done)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
}

/// Runs a batch of borrowing tasks across the pool, returning once all have
/// finished. The calling thread participates, so a width-1 pool (or a
/// sequential context) degrades to an ordered inline loop. The first panic
/// among the tasks is re-raised here — after every other task has completed,
/// so borrows held by sibling tasks are never outlived.
pub fn par_tasks<F: FnOnce() + Send>(tasks: Vec<F>) {
    let total = tasks.len();
    if total == 0 {
        return;
    }
    let width = num_threads();
    let helpers = effective_threads().min(width).min(total) - 1;
    if total == 1 || helpers == 0 || is_sequential() {
        // Match the parallel path's contract exactly: tasks run
        // sequential-marked, every task runs even if an earlier one
        // panicked, and the first panic is re-raised at the end.
        let mut first_panic = None;
        run_sequential(|| {
            for task in tasks {
                if let Err(payload) = catch_unwind(AssertUnwindSafe(task)) {
                    first_panic.get_or_insert(payload);
                }
            }
        });
        if let Some(payload) = first_panic {
            resume_unwind(payload);
        }
        return;
    }

    let erased: Vec<Option<Job>> = tasks
        .into_iter()
        .map(|task| {
            let boxed: Box<dyn FnOnce() + Send + '_> = Box::new(task);
            // SAFETY: lifetime erasure only. Every task is either executed
            // or dropped before `par_tasks` returns: `wait()` blocks until
            // all `total` tasks have run, and late-arriving helpers observe
            // an exhausted cursor and touch nothing. Hence no erased
            // closure (or its borrows) outlives this call frame.
            let boxed: Job =
                unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + '_>, Job>(boxed) };
            Some(boxed)
        })
        .collect();

    let scope = Arc::new(Scope {
        tasks: Mutex::new(erased),
        cursor: AtomicUsize::new(0),
        total,
        done: Mutex::new(0),
        all_done: Condvar::new(),
        panic: Mutex::new(None),
    });

    let p = pool();
    for _ in 0..helpers {
        let s = Arc::clone(&scope);
        // A send error means the receiver is gone, which cannot happen
        // while the static pool is alive; the caller-side `work` below
        // would still drain every task if it somehow did.
        let _ = p.sender.send(Box::new(move || s.work()));
    }
    scope.work();
    scope.wait();

    let payload = lock(&scope.panic).take();
    if let Some(payload) = payload {
        resume_unwind(payload);
    }
}

/// Partitions `0..rows` into at most [`effective_threads`] contiguous,
/// near-equal ranges of at least `min_rows_per_task` rows each and runs
/// `f` on every range, in parallel. Each row index is handed to exactly one
/// task, so a kernel that writes disjoint per-row output is race-free and
/// — when its per-row computation is order-fixed — bit-for-bit
/// deterministic under any thread count.
pub fn par_rows(rows: usize, min_rows_per_task: usize, f: impl Fn(Range<usize>) + Sync) {
    if rows == 0 {
        return;
    }
    let min_rows = min_rows_per_task.max(1);
    let n_tasks = effective_threads().min(rows / min_rows).max(1);
    if n_tasks <= 1 {
        f(0..rows);
        return;
    }
    let base = rows / n_tasks;
    let rem = rows % n_tasks;
    let mut tasks = Vec::with_capacity(n_tasks);
    let mut start = 0;
    for t in 0..n_tasks {
        let len = base + usize::from(t < rem);
        let range = start..start + len;
        start += len;
        let f = &f;
        tasks.push(move || f(range));
    }
    par_tasks(tasks);
}

/// Splits `data` into consecutive chunks of `chunk_len` elements (the last
/// may be shorter) and runs `f(chunk_index, chunk)` on each, in parallel.
/// Chunk boundaries depend only on `chunk_len` — never on the thread count
/// — so reductions that fix their merge order per chunk stay deterministic
/// under any `DT_NUM_THREADS`.
///
/// # Panics
/// Panics when `chunk_len == 0`.
pub fn for_each_chunk<T: Send>(
    data: &mut [T],
    chunk_len: usize,
    f: impl Fn(usize, &mut [T]) + Sync,
) {
    assert!(chunk_len > 0, "for_each_chunk: chunk_len must be positive");
    if data.is_empty() {
        return;
    }
    let mut chunks: Vec<(usize, &mut [T])> = data.chunks_mut(chunk_len).enumerate().collect();
    let n_tasks = effective_threads().min(chunks.len());
    if n_tasks <= 1 {
        for (i, chunk) in chunks {
            f(i, chunk);
        }
        return;
    }
    // Contiguous runs of chunks per task, balanced to within one chunk.
    let base = chunks.len() / n_tasks;
    let rem = chunks.len() % n_tasks;
    // alloc-ok: one closure slot per task (≤ thread count), allocated per parallel region, not per element
    let mut tasks = Vec::with_capacity(n_tasks);
    for t in (0..n_tasks).rev() {
        let len = base + usize::from(t < rem);
        let run = chunks.split_off(chunks.len() - len);
        let f = &f;
        tasks.push(move || {
            for (i, chunk) in run {
                f(i, chunk);
            }
        });
    }
    par_tasks(tasks);
}

/// Runs `f(0), …, f(n - 1)` across the pool with dynamic (work-stealing
/// style) scheduling: participants claim the next unclaimed index until
/// none remain. Suited to heterogeneous task costs (experiment sweeps);
/// for uniform numeric work prefer [`par_rows`] / [`for_each_chunk`].
/// If `f` panics, that participant stops claiming further indices but the
/// survivors finish the rest; the first panic is re-raised at the end.
pub fn par_indices(n: usize, f: impl Fn(usize) + Sync) {
    if n == 0 {
        return;
    }
    let n_tasks = effective_threads().min(n);
    if n_tasks <= 1 {
        for i in 0..n {
            f(i);
        }
        return;
    }
    let cursor = AtomicUsize::new(0);
    let tasks = (0..n_tasks)
        .map(|_| {
            let (f, cursor) = (&f, &cursor);
            move || loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    return;
                }
                f(i);
            }
        })
        .collect();
    par_tasks(tasks);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn par_rows_covers_every_row_once() {
        let rows = 997; // prime, so partitions are ragged
        let hits: Vec<AtomicUsize> = (0..rows).map(|_| AtomicUsize::new(0)).collect();
        par_rows(rows, 1, |range| {
            for i in range {
                hits[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn for_each_chunk_geometry_is_thread_count_independent() {
        let run = |limit: usize| -> Vec<u64> {
            let mut out = vec![0u64; 1003];
            with_thread_limit(limit, || {
                for_each_chunk(&mut out, 64, |ci, chunk| {
                    for (off, v) in chunk.iter_mut().enumerate() {
                        // Encode (chunk index, offset): equal outputs imply
                        // equal chunk boundaries.
                        *v = (ci as u64) << 32 | off as u64;
                    }
                });
            });
            out
        };
        let one = run(1);
        assert_eq!(one, run(2));
        assert_eq!(one, run(8));
        assert_eq!(one[64], 1 << 32);
    }

    #[test]
    fn par_indices_visits_each_index_exactly_once() {
        let n = 313;
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        with_thread_limit(8, || {
            par_indices(n, |i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn sequential_guard_forces_inline_execution() {
        run_sequential(|| {
            assert!(is_sequential());
            assert_eq!(effective_threads(), 1);
            // Nested primitives still complete (inline, no deadlock).
            let counter = AtomicU64::new(0);
            par_indices(10, |_| {
                counter.fetch_add(1, Ordering::Relaxed);
            });
            assert_eq!(counter.load(Ordering::Relaxed), 10);
        });
        assert!(!SEQUENTIAL.with(Cell::get));
    }

    #[test]
    fn thread_limit_is_scoped_and_restored() {
        with_thread_limit(3, || {
            if !is_sequential() {
                assert_eq!(effective_threads(), 3);
            }
            with_thread_limit(0, || {
                assert_eq!(
                    effective_threads(),
                    if is_sequential() { 1 } else { num_threads() }
                );
            });
        });
        assert_eq!(LIMIT.with(Cell::get), 0);
    }

    #[test]
    fn nested_parallelism_runs_inline_without_deadlock() {
        let counter = AtomicU64::new(0);
        with_thread_limit(4, || {
            par_rows(16, 1, |outer| {
                // Inside a task the thread is sequential-marked: the inner
                // call must run inline rather than re-entering the pool.
                assert!(is_sequential());
                par_rows(outer.len(), 1, |inner| {
                    counter.fetch_add(inner.len() as u64, Ordering::Relaxed);
                });
            });
        });
        assert_eq!(counter.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn panics_propagate_after_all_tasks_finish() {
        let finished = AtomicUsize::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            with_thread_limit(4, || {
                let tasks: Vec<_> = (0..8)
                    .map(|i| {
                        let finished = &finished;
                        move || {
                            if i == 3 {
                                panic!("task 3 exploded");
                            }
                            finished.fetch_add(1, Ordering::Relaxed);
                        }
                    })
                    .collect();
                par_tasks(tasks);
            });
        }));
        assert!(result.is_err());
        assert_eq!(finished.load(Ordering::Relaxed), 7);
    }

    #[test]
    fn empty_inputs_are_no_ops() {
        par_rows(0, 1, |_| panic!("must not run"));
        par_indices(0, |_| panic!("must not run"));
        for_each_chunk(&mut [0u8; 0], 4, |_, _| panic!("must not run"));
        par_tasks(Vec::<fn()>::new());
    }

    #[test]
    fn results_match_sequential_reference() {
        let n = 4096usize;
        let mut par = vec![0.0f64; n];
        with_thread_limit(8, || {
            for_each_chunk(&mut par, 100, |ci, chunk| {
                for (off, v) in chunk.iter_mut().enumerate() {
                    let i = ci * 100 + off;
                    *v = (i as f64).sqrt().sin();
                }
            });
        });
        let seq: Vec<f64> = (0..n).map(|i| (i as f64).sqrt().sin()).collect();
        assert_eq!(par, seq);
    }
}
