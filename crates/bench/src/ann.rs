//! ANN retrieval report: IVF probe-and-rerank vs the exact engine for
//! `BENCH_ann.json` (schema `dt-bench/ann/v1`).
//!
//! The acceptance artefact for the IVF layer is a recall/latency frontier:
//! the same sixteen-user top-K query answered by the exact
//! [`dt_serve::TopKEngine`] arm (blocked gather-GEMM over all `M` items)
//! and by [`dt_serve::IvfIndex`] probe-and-rerank, sweeping
//! `nlist ∈ {64, 256, 1024}` × `nprobe ∈ {1, 4, 16, 64}` ×
//! `M ∈ {10⁴, 10⁵, 10⁶}` × `K ∈ {10, 50}` at `DT_NUM_THREADS` 1/2/8
//! (widths forced in-process through `dt_parallel::with_thread_limit`, so
//! one run covers the sweep; every row records the host's true hardware
//! width so oversubscribed rows are self-describing).
//!
//! The item panel is **clustered**, not uniform: items are drawn around
//! 512 latent centers with small within-cluster spread, the geometry
//! trained MF item embeddings actually have. That matters — on a
//! structureless uniform panel, IVF recall cannot beat the probed
//! coverage fraction (cells of i.i.d. vectors have near-zero centroids),
//! so a uniform benchmark would measure nothing but noise. Recall@K is
//! counted against the exact arm's batch (item overlap per user,
//! micro-averaged), which by the serve-crate contract equals the
//! `reference::top_k_by_sort` oracle. `ivf_allocs_per_batch` is the
//! post-warm-up [`dt_tensor::pool::stats`] fresh-alloc delta per query
//! batch; the IVF arm's steady state is zero.
//!
//! One [`IvfIndex`] is built per `(M, nlist)` and reused across widths,
//! probes and K — legitimate because builds are bit-identical at any
//! width. Like [`crate::report`], the harness is a plain `Instant`
//! best-of-N (std-only, so the offline verification shim can run it) and
//! the JSON is hand-rolled.

use std::fmt::Write as _;
use std::path::Path;
use std::time::Instant;

use dt_serve::{IvfIndex, IvfParams, IvfScratch, ScoringIndex, TopKBatch, TopKEngine};
use dt_tensor::pool;
use dt_tensor::Tensor;

/// Deterministic xorshift64* stream — the report must not depend on `rand`.
struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> Self {
        Self(seed | 1)
    }

    fn next_f64(&mut self) -> f64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        (self.0.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64 / (1u64 << 52) as f64 - 1.0
    }
}

/// A serving index whose item panel carries cluster structure: `n_items`
/// items drawn around `n_centers` latent centers (uniform in `[-1, 1]^d`)
/// with uniform within-cluster `spread`, plus small item biases. Users
/// stay uniform — queries should not trivially align with one center.
#[must_use]
pub fn build_clustered_index(
    n_users: usize,
    n_items: usize,
    dim: usize,
    n_centers: usize,
    spread: f64,
    seed: u64,
) -> ScoringIndex {
    let n_centers = n_centers.clamp(1, n_items);
    let mut rng = XorShift::new(seed);
    let centers = Tensor::from_fn(n_centers, dim, |_, _| rng.next_f64());
    let q = Tensor::from_fn(n_items, dim, |i, j| {
        centers.get(i % n_centers, j) + spread * rng.next_f64()
    });
    let p = Tensor::from_fn(n_users, dim, |_, _| rng.next_f64());
    let ub: Vec<f64> = (0..n_users).map(|_| 0.1 * rng.next_f64()).collect();
    let ib: Vec<f64> = (0..n_items).map(|_| 0.1 * rng.next_f64()).collect();
    ScoringIndex::new(p, q, ub, ib, 0.1)
}

/// Micro-averaged recall@K of `got` against the exact `truth` batch:
/// overlap of returned item ids, summed over users.
#[must_use]
pub fn recall_vs(truth: &TopKBatch, got: &TopKBatch) -> f64 {
    assert_eq!(truth.n_users(), got.n_users(), "recall_vs: stripe mismatch");
    let mut hit = 0usize;
    let mut total = 0usize;
    for j in 0..truth.n_users() {
        let want: Vec<u32> = truth.user(j).iter().map(|r| r.item).collect();
        total += want.len();
        hit += got
            .user(j)
            .iter()
            .filter(|r| want.contains(&r.item))
            .count();
    }
    if total == 0 {
        1.0
    } else {
        hit as f64 / total as f64
    }
}

/// One frontier point: `(M, K, nlist, nprobe, threads)` with the exact
/// and IVF arm latencies, recall@K, and the steady-state alloc probe.
pub struct AnnMeasurement {
    pub m: usize,
    pub k: usize,
    pub users: usize,
    pub dim: usize,
    pub threads: usize,
    pub nlist: usize,
    pub nprobe: usize,
    pub exact_ms: f64,
    pub ivf_ms: f64,
    pub recall_at_k: f64,
    pub ivf_allocs_per_batch: f64,
}

impl AnnMeasurement {
    fn speedup(&self) -> f64 {
        self.exact_ms / self.ivf_ms.max(1e-9)
    }
}

/// Best-of-`reps` wall time in milliseconds.
fn time_ms(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
    }
    best
}

/// The full frontier sweep (module docs). Slow at `M = 10⁶` — the
/// offline `gen_ann` bin is the intended entry point.
#[must_use]
pub fn run_measurements() -> Vec<AnnMeasurement> {
    let (n_users, dim, n_query) = (2048usize, 32usize, 16usize);
    let widths = [1usize, 2, 8];
    let nlists = [64usize, 256, 1024];
    let nprobes = [1usize, 4, 16, 64];
    let ks = [10usize, 50];
    let engine = TopKEngine::new();
    let mut out = Vec::new();

    for &m in &[10_000usize, 100_000, 1_000_000] {
        let index = build_clustered_index(n_users, m, dim, 512, 0.25, 0x0A17 ^ m as u64);
        let users: Vec<usize> = (0..n_query).map(|j| (j * 131) % n_users).collect();
        let reps = if m >= 1_000_000 { 2 } else { 3 };

        // Exact arm per (K, width): truth batches once (width-free), then
        // the timed passes under each forced width.
        let mut exact: Vec<(usize, TopKBatch, Vec<f64>)> = Vec::new();
        for &k in &ks {
            let mut batch = TopKBatch::new();
            engine.recommend_into(&index, &users, k, None, &mut batch);
            let mut per_width = Vec::new();
            for &w in &widths {
                let ms = dt_parallel::with_thread_limit(w, || {
                    engine.recommend_into(&index, &users, k, None, &mut batch); // warm-up
                    time_ms(reps, || {
                        engine.recommend_into(&index, &users, k, None, &mut batch);
                    })
                });
                per_width.push(ms);
            }
            let truth = engine.recommend(&index, &users, k, None);
            exact.push((k, truth, per_width));
        }

        for &nlist in &nlists {
            // One build per (M, nlist), reused everywhere below (builds
            // are bit-identical at any width).
            let ivf = IvfIndex::build(
                &index,
                &IvfParams {
                    nlist,
                    iters: 6,
                    seed: 0x1AF5 ^ nlist as u64,
                    train_cap: 1 << 17,
                },
            );
            for &nprobe in &nprobes {
                for (k, truth, exact_per_width) in &exact {
                    let k = *k;
                    let mut batch = TopKBatch::new();
                    let mut scratch = IvfScratch::default();
                    // Recall + alloc probe once per point: both are
                    // width-independent by the determinism contract.
                    let (recall, allocs) = dt_parallel::with_thread_limit(1, || {
                        engine.recommend_ivf_into(
                            &index,
                            &ivf,
                            nprobe,
                            &users,
                            k,
                            None,
                            &mut scratch,
                            &mut batch,
                        );
                        let probe_batches = 5usize;
                        let before = pool::stats();
                        for _ in 0..probe_batches {
                            engine.recommend_ivf_into(
                                &index,
                                &ivf,
                                nprobe,
                                &users,
                                k,
                                None,
                                &mut scratch,
                                &mut batch,
                            );
                        }
                        let after = pool::stats();
                        let allocs = (after.fresh_allocs - before.fresh_allocs) as f64
                            / probe_batches as f64;
                        (recall_vs(truth, &batch), allocs)
                    });
                    for (wi, &w) in widths.iter().enumerate() {
                        let ivf_ms = dt_parallel::with_thread_limit(w, || {
                            engine.recommend_ivf_into(
                                &index,
                                &ivf,
                                nprobe,
                                &users,
                                k,
                                None,
                                &mut scratch,
                                &mut batch,
                            ); // warm-up at this width
                            time_ms(reps, || {
                                engine.recommend_ivf_into(
                                    &index,
                                    &ivf,
                                    nprobe,
                                    &users,
                                    k,
                                    None,
                                    &mut scratch,
                                    &mut batch,
                                );
                            })
                        });
                        out.push(AnnMeasurement {
                            m,
                            k,
                            users: n_query,
                            dim,
                            threads: w,
                            nlist,
                            nprobe,
                            exact_ms: exact_per_width[wi],
                            ivf_ms,
                            recall_at_k: recall,
                            ivf_allocs_per_batch: allocs,
                        });
                    }
                }
            }
        }
    }
    out
}

/// Renders the report as JSON (schema `dt-bench/ann/v1`).
#[must_use]
pub fn render_report(results: &[AnnMeasurement]) -> String {
    let host = crate::report::host_threads();
    let mut s = crate::report::bench_header(
        "dt-bench/ann/v1",
        "recall/latency frontier for IVF probe-and-rerank vs \
         the exact dt-serve engine: one batched top-K query (16 users x all \
         M items, dim-32 panels, item panel clustered around 512 latent \
         centers with 0.25 spread — the geometry trained MF embeddings \
         have; on a uniform panel IVF recall cannot beat the probed \
         coverage fraction, so a uniform benchmark would be vacuous). Both \
         arms share the scoring kernels, so candidate scores are bit-equal \
         and recall_at_k counts pure candidate-set misses. Thread widths \
         are forced in-process via dt_parallel::with_thread_limit; \
         host_threads per row records the hardware actually available. One \
         IvfIndex per (m, nlist) (iters 6, train_cap 131072), reused \
         across widths/nprobe/k — builds are bit-identical at any width. \
         ivf_allocs_per_batch is the post-warm-up dt_tensor::pool::stats \
         fresh-alloc delta per query batch; steady state is zero.",
        None,
    );
    s.push_str("  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        let sep = if i + 1 == results.len() { "" } else { "," };
        let _ = writeln!(
            s,
            "    {{\"m\": {}, \"k\": {}, \"users\": {}, \"dim\": {}, \
             \"threads\": {}, \"host_threads\": {host}, \"nlist\": {}, \
             \"nprobe\": {}, \"exact_ms\": {:.3}, \"ivf_ms\": {:.3}, \
             \"speedup_vs_exact\": {:.2}, \"recall_at_k\": {:.4}, \
             \"ivf_allocs_per_batch\": {:.1}}}{sep}",
            r.m,
            r.k,
            r.users,
            r.dim,
            r.threads,
            r.nlist,
            r.nprobe,
            r.exact_ms,
            r.ivf_ms,
            r.speedup(),
            r.recall_at_k,
            r.ivf_allocs_per_batch,
        );
    }
    s.push_str("  ]\n}\n");
    s
}

/// Runs the sweep and writes `BENCH_ann.json` to `path`.
///
/// # Errors
/// Propagates the underlying file-write error.
pub fn write_ann_report(path: &Path) -> std::io::Result<()> {
    let results = run_measurements();
    std::fs::write(path, render_report(&results))?;
    for r in &results {
        eprintln!(
            "ann M={:7} K={:2} t={} nlist={:4} nprobe={:2}  exact {:8.3} ms  \
             ivf {:8.3} ms  speedup {:6.2}x  recall {:.4}  allocs/batch {:4.1}",
            r.m,
            r.k,
            r.threads,
            r.nlist,
            r.nprobe,
            r.exact_ms,
            r.ivf_ms,
            r.speedup(),
            r.recall_at_k,
            r.ivf_allocs_per_batch,
        );
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clustered_index_shapes_and_determinism() {
        let a = build_clustered_index(10, 200, 8, 16, 0.25, 7);
        let b = build_clustered_index(10, 200, 8, 16, 0.25, 7);
        assert_eq!(a.n_users(), 10);
        assert_eq!(a.n_items(), 200);
        assert_eq!(a.dim(), 8);
        assert_eq!(a.item_panel(), b.item_panel());
        assert_eq!(a.user_panel(), b.user_panel());
    }

    #[test]
    fn clustered_panel_probes_well_at_small_nprobe() {
        // The whole point of the clustered generator: with nlist matching
        // the latent centers, a few probes must already recover most of
        // the exact top-10 — on a uniform panel this would hover near the
        // coverage fraction instead.
        let index = build_clustered_index(64, 4000, 16, 32, 0.25, 11);
        let ivf = IvfIndex::build(
            &index,
            &IvfParams {
                nlist: 32,
                iters: 6,
                seed: 3,
                train_cap: 0,
            },
        );
        let users: Vec<usize> = (0..16).collect();
        let engine = TopKEngine::new();
        let truth = engine.recommend(&index, &users, 10, None);
        let mut got = TopKBatch::new();
        let mut scratch = IvfScratch::default();
        engine.recommend_ivf_into(&index, &ivf, 4, &users, 10, None, &mut scratch, &mut got);
        let r = recall_vs(&truth, &got);
        assert!(r > 0.8, "recall {r} too low for a clustered panel");
    }

    #[test]
    fn recall_is_one_against_itself_and_counts_misses() {
        let index = build_clustered_index(8, 300, 6, 8, 0.3, 5);
        let engine = TopKEngine::new();
        let truth = engine.recommend(&index, &[0, 1, 2], 5, None);
        assert!((recall_vs(&truth, &truth) - 1.0).abs() < 1e-12);
        let other = engine.recommend(&index, &[3, 4, 5], 5, None);
        assert!(recall_vs(&truth, &other) < 1.0);
    }

    #[test]
    fn report_shape_is_valid() {
        let m = AnnMeasurement {
            m: 1_000_000,
            k: 10,
            users: 16,
            dim: 32,
            threads: 8,
            nlist: 1024,
            nprobe: 16,
            exact_ms: 530.0,
            ivf_ms: 26.5,
            recall_at_k: 0.97,
            ivf_allocs_per_batch: 0.0,
        };
        let json = render_report(&[m]);
        assert!(json.contains("\"schema\": \"dt-bench/ann/v1\""));
        assert!(json.contains("\"speedup_vs_exact\": 20.00"));
        assert!(json.contains("\"recall_at_k\": 0.9700"));
        assert!(json.contains("\"ivf_allocs_per_batch\": 0.0"));
        assert!(json.contains("\"threads\": 8"));
        assert!(json.contains("\"git_rev\": \""));
        assert!(json.trim_end().ends_with('}'));
    }
}
