//! Mixed-precision scoring report: the accuracy-vs-bandwidth frontier for
//! `BENCH_quant.json` (schema `dt-bench/quant/v1`).
//!
//! The acceptance artefact for the quantized serving panels is a frontier
//! over panel dtypes: the same sixteen-user full-catalog top-K query
//! answered by the exact f64 [`dt_serve::TopKEngine`] arm (the oracle and
//! latency baseline) and by [`dt_serve::QuantizedIndex`] exports of the
//! same index at every [`dt_serve::PanelDtype`] — `f64` (a verbatim copy,
//! so its rows double as a bit-identity check on the quantized engine),
//! `f32`, and per-row-scaled `i8`. The sweep covers
//! `M ∈ {10⁴, 10⁵, 10⁶}` × `K ∈ {10, 50}` at the pool widths in
//! [`crate::serve::SWEEP_WIDTHS`] (forced in-process through
//! `dt_parallel::with_thread_limit`; every row records the host's true
//! hardware width so oversubscribed rows are self-describing).
//!
//! The item panel is **clustered** (reusing
//! [`crate::ann::build_clustered_index`]) — the geometry trained MF item
//! embeddings actually have, and the regime where a lossy top-K can
//! plausibly miss: near-duplicate items whose score gap is smaller than
//! the quantization step. Per row the report carries `bytes_per_item`
//! (quantized item-panel payload + the f64 item bias), `overlap`
//! (top-K set overlap against the f64 oracle batch, micro-averaged — the
//! same counting as the ANN report's recall), `ndcg_at_k` (oracle members
//! as binary relevance, so misses at the top ranks cost more than misses
//! at the tail), and `allocs_per_batch` (post-warm-up
//! [`dt_tensor::pool::stats`] fresh-alloc delta per query batch; the
//! quantized engine's steady state is zero). Quality and alloc numbers
//! are measured once per `(M, K, dtype)` at width 1 — both are
//! width-independent by the engine's determinism contract. Like
//! [`crate::report`], the harness is a plain `Instant` best-of-N
//! (std-only, so the offline verification shim can run it) and the JSON
//! is hand-rolled.

use std::fmt::Write as _;
use std::path::Path;
use std::time::Instant;

use dt_serve::{PanelDtype, QuantScratch, TopKBatch, TopKEngine};
use dt_tensor::pool;

use crate::ann::{build_clustered_index, recall_vs};

/// Micro-averaged NDCG@K of `got` against the oracle `truth` batch, with
/// binary relevance: an item is relevant iff it appears in that user's
/// oracle top-K. Unlike the flat set overlap this weighs *where* the
/// misses land — a wrong item at the top rank costs more than one at the
/// bottom, so quantization error that displaces the best item shows up
/// harder than error that perturbs the tail.
#[must_use]
pub fn ndcg_vs(truth: &TopKBatch, got: &TopKBatch) -> f64 {
    assert_eq!(truth.n_users(), got.n_users(), "ndcg_vs: stripe mismatch");
    let discount = |pos: usize| 1.0 / (pos as f64 + 2.0).log2();
    let mut dcg_sum = 0.0;
    let mut idcg_sum = 0.0;
    for j in 0..truth.n_users() {
        let want: Vec<u32> = truth.user(j).iter().map(|r| r.item).collect();
        for (pos, r) in got.user(j).iter().enumerate() {
            if want.contains(&r.item) {
                dcg_sum += discount(pos);
            }
        }
        idcg_sum += (0..want.len()).map(discount).sum::<f64>();
    }
    if idcg_sum == 0.0 {
        1.0
    } else {
        dcg_sum / idcg_sum
    }
}

/// One frontier point: `(M, K, dtype, threads)` with the exact-f64 and
/// quantized arm latencies, the quality-vs-oracle pair, and the
/// steady-state alloc probe.
pub struct QuantMeasurement {
    pub m: usize,
    pub k: usize,
    pub users: usize,
    pub dim: usize,
    pub threads: usize,
    pub dtype: PanelDtype,
    pub bytes_per_item: f64,
    pub exact_f64_ms: f64,
    pub quant_ms: f64,
    pub overlap: f64,
    pub ndcg_at_k: f64,
    pub allocs_per_batch: f64,
}

impl QuantMeasurement {
    fn speedup(&self) -> f64 {
        self.exact_f64_ms / self.quant_ms.max(1e-9)
    }

    fn items_per_sec(&self) -> f64 {
        if self.quant_ms <= 0.0 {
            return 0.0;
        }
        (self.users * self.m) as f64 / (self.quant_ms / 1e3)
    }
}

/// Best-of-`reps` wall time in milliseconds.
fn time_ms(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
    }
    best
}

/// Every panel dtype the frontier sweeps, lossless first.
pub const DTYPES: [PanelDtype; 3] = [PanelDtype::F64, PanelDtype::F32, PanelDtype::ScaledI8];

/// The frontier sweep over the given catalog sizes and pool widths
/// (module docs). The full artefact uses
/// `ms = [10⁴, 10⁵, 10⁶]` × `widths = SWEEP_WIDTHS`; the smoke entry
/// point trims both so the offline shim can run it in seconds.
#[must_use]
pub fn run_measurements(ms: &[usize], widths: &[usize]) -> Vec<QuantMeasurement> {
    let (n_users, dim, n_query) = (2048usize, 32usize, 16usize);
    let ks = [10usize, 50];
    let engine = TopKEngine::new();
    let mut out = Vec::new();

    for &m in ms {
        let index = build_clustered_index(n_users, m, dim, 512, 0.25, 0x0A17 ^ m as u64);
        let users: Vec<usize> = (0..n_query).map(|j| (j * 131) % n_users).collect();
        let reps = if m >= 1_000_000 { 2 } else { 3 };

        // Exact f64 arm per (K, width): the oracle batch once
        // (width-free), then the timed baseline under each forced width.
        let mut exact: Vec<(usize, TopKBatch, Vec<f64>)> = Vec::new();
        for &k in &ks {
            let mut batch = TopKBatch::new();
            let mut per_width = Vec::new();
            for &w in widths {
                let ms_at_w = dt_parallel::with_thread_limit(w, || {
                    engine.recommend_into(&index, &users, k, None, &mut batch); // warm-up
                    time_ms(reps, || {
                        engine.recommend_into(&index, &users, k, None, &mut batch);
                    })
                });
                per_width.push(ms_at_w);
            }
            let truth = engine.recommend(&index, &users, k, None);
            exact.push((k, truth, per_width));
        }

        for &dtype in &DTYPES {
            // One export per (M, dtype), reused across K and widths —
            // quantization happens at index-export time, not per query.
            let qidx = index.quantize(dtype);
            let bytes_per_item = qidx.bytes_per_item();
            let mut scratch = QuantScratch::default();
            let mut batch = TopKBatch::new();
            for (k, truth, exact_per_width) in &exact {
                let k = *k;
                // Quality + alloc probe once per point: both are
                // width-independent by the determinism contract.
                let (overlap, ndcg_at_k, allocs) = dt_parallel::with_thread_limit(1, || {
                    engine.recommend_quantized_into(
                        &qidx,
                        &users,
                        k,
                        None,
                        None,
                        &mut scratch,
                        &mut batch,
                    );
                    let probe_batches = 5usize;
                    let before = pool::stats();
                    for _ in 0..probe_batches {
                        engine.recommend_quantized_into(
                            &qidx,
                            &users,
                            k,
                            None,
                            None,
                            &mut scratch,
                            &mut batch,
                        );
                    }
                    let after = pool::stats();
                    let allocs =
                        (after.fresh_allocs - before.fresh_allocs) as f64 / probe_batches as f64;
                    (recall_vs(truth, &batch), ndcg_vs(truth, &batch), allocs)
                });
                if dtype == PanelDtype::F64 {
                    // The f64 export is a verbatim copy: its quantized-arm
                    // batch must equal the exact engine's bit-for-bit.
                    assert_eq!(
                        *truth, batch,
                        "f64 quantized arm drifted from the exact engine at M={m} K={k}"
                    );
                }
                for (wi, &w) in widths.iter().enumerate() {
                    let quant_ms = dt_parallel::with_thread_limit(w, || {
                        engine.recommend_quantized_into(
                            &qidx,
                            &users,
                            k,
                            None,
                            None,
                            &mut scratch,
                            &mut batch,
                        ); // warm-up at this width
                        time_ms(reps, || {
                            engine.recommend_quantized_into(
                                &qidx,
                                &users,
                                k,
                                None,
                                None,
                                &mut scratch,
                                &mut batch,
                            );
                        })
                    });
                    out.push(QuantMeasurement {
                        m,
                        k,
                        users: n_query,
                        dim,
                        threads: w,
                        dtype,
                        bytes_per_item,
                        exact_f64_ms: exact_per_width[wi],
                        quant_ms,
                        overlap,
                        ndcg_at_k,
                        allocs_per_batch: allocs,
                    });
                }
            }
        }
    }
    out
}

/// Renders the report as JSON (schema `dt-bench/quant/v1`).
#[must_use]
pub fn render_report(results: &[QuantMeasurement]) -> String {
    let host = crate::report::host_threads();
    let mut s = crate::report::bench_header(
        "dt-bench/quant/v1",
        "accuracy-vs-bandwidth frontier for mixed-precision scoring \
         panels: one batched full-catalog top-K query (16 users x all M \
         items, dim-32 panels, item panel clustered around 512 latent \
         centers with 0.25 spread — the regime where a lossy top-K can \
         plausibly miss) answered by the exact f64 dt-serve engine \
         (exact_f64_ms, the oracle) and by QuantizedIndex exports at \
         dtype f64 / f32 / scaled_i8 (quant_ms, fused range-sharded \
         scan). bytes_per_item = quantized item-panel payload + f64 item \
         bias. overlap is micro-averaged top-K set overlap vs the oracle \
         batch; ndcg_at_k scores the same lists with oracle membership as \
         binary relevance, so top-rank misses cost more. The f64 dtype is a \
         verbatim copy and is asserted bit-identical to the exact engine. \
         Thread widths are forced in-process via \
         dt_parallel::with_thread_limit; host_threads per row records the \
         hardware actually available. Quality and alloc numbers are \
         width-independent by the determinism contract and measured at \
         width 1. allocs_per_batch is the post-warm-up \
         dt_tensor::pool::stats fresh-alloc delta per query batch; the \
         quantized engine's steady state is zero.",
        None,
    );
    s.push_str("  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        let sep = if i + 1 == results.len() { "" } else { "," };
        let _ = writeln!(
            s,
            "    {{\"m\": {}, \"k\": {}, \"users\": {}, \"dim\": {}, \
             \"threads\": {}, \"host_threads\": {host}, \"dtype\": \"{}\", \
             \"bytes_per_item\": {:.1}, \"exact_f64_ms\": {:.3}, \
             \"quant_ms\": {:.3}, \"speedup_vs_f64\": {:.2}, \
             \"items_per_sec\": {:.0}, \"overlap\": {:.4}, \
             \"ndcg_at_k\": {:.4}, \"allocs_per_batch\": {:.1}}}{sep}",
            r.m,
            r.k,
            r.users,
            r.dim,
            r.threads,
            r.dtype.label(),
            r.bytes_per_item,
            r.exact_f64_ms,
            r.quant_ms,
            r.speedup(),
            r.items_per_sec(),
            r.overlap,
            r.ndcg_at_k,
            r.allocs_per_batch,
        );
    }
    s.push_str("  ]\n}\n");
    s
}

fn eprint_rows(results: &[QuantMeasurement]) {
    for r in results {
        eprintln!(
            "quant M={:7} K={:2} t={} dtype={:9}  exact {:8.3} ms  quant {:8.3} ms  \
             speedup {:5.2}x  overlap {:.4}  ndcg {:.4}  allocs/batch {:4.1}",
            r.m,
            r.k,
            r.threads,
            r.dtype.label(),
            r.exact_f64_ms,
            r.quant_ms,
            r.speedup(),
            r.overlap,
            r.ndcg_at_k,
            r.allocs_per_batch,
        );
    }
}

/// Runs the full frontier sweep and writes `BENCH_quant.json` to `path`.
///
/// # Errors
/// Propagates the underlying file-write error.
pub fn write_quant_report(path: &Path) -> std::io::Result<()> {
    let results = run_measurements(&[10_000, 100_000, 1_000_000], &crate::serve::SWEEP_WIDTHS);
    std::fs::write(path, render_report(&results))?;
    eprint_rows(&results);
    Ok(())
}

/// Runs a trimmed sweep — `M = 10⁴` at the ambient pool width — and
/// writes the report to `path`. The CI smoke entry point: it exercises
/// every dtype arm and the f64 bit-identity assert in seconds without
/// touching the committed full artefact.
///
/// # Errors
/// Propagates the underlying file-write error.
pub fn write_quant_smoke_report(path: &Path) -> std::io::Result<()> {
    let results = run_measurements(&[10_000], &[dt_parallel::num_threads()]);
    std::fs::write(path, render_report(&results))?;
    eprint_rows(&results);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ndcg_is_one_against_itself_and_discounts_misses() {
        let index = build_clustered_index(8, 300, 6, 8, 0.3, 5);
        let engine = TopKEngine::new();
        let truth = engine.recommend(&index, &[0, 1, 2], 5, None);
        assert!((ndcg_vs(&truth, &truth) - 1.0).abs() < 1e-12);
        let other = engine.recommend(&index, &[3, 4, 5], 5, None);
        assert!(ndcg_vs(&truth, &other) < 1.0);
    }

    #[test]
    fn ndcg_weighs_miss_position_where_overlap_is_flat() {
        use dt_serve::Ranked;
        let mut truth = TopKBatch::new();
        truth.reset(1, 3);
        let mut got = TopKBatch::new();
        got.reset(1, 3);
        for (pos, item) in [0u32, 1, 2].iter().enumerate() {
            truth.user_mut(0)[pos] = Ranked {
                item: *item,
                score: -(pos as f64),
            };
            // Same member set, reversed order.
            got.user_mut(0)[pos] = Ranked {
                item: 2 - *item,
                score: -(pos as f64),
            };
        }
        truth.set_count(0, 3);
        got.set_count(0, 3);
        assert!((recall_vs(&truth, &got) - 1.0).abs() < 1e-12);
        // Binary relevance: every returned item is an oracle member, so
        // NDCG is 1.0 too — only true misses are penalised.
        assert!((ndcg_vs(&truth, &got) - 1.0).abs() < 1e-12);
        // Drop the top item for a genuine miss at the top rank: NDCG
        // falls below overlap because the miss sat at the best position.
        got.user_mut(0)[0] = Ranked {
            item: 99,
            score: 0.0,
        };
        let overlap = recall_vs(&truth, &got);
        let ndcg = ndcg_vs(&truth, &got);
        assert!((overlap - 2.0 / 3.0).abs() < 1e-12);
        assert!(ndcg < overlap, "ndcg {ndcg} not below overlap {overlap}");
    }

    #[test]
    fn smoke_sweep_covers_every_dtype_and_f64_is_exact() {
        let rows = run_measurements(&[2_000], &[2]);
        assert_eq!(rows.len(), DTYPES.len() * 2); // x K in {10, 50}
        for r in &rows {
            assert!(r.quant_ms >= 0.0 && r.exact_f64_ms >= 0.0);
            assert!(
                r.overlap > 0.5,
                "{}: overlap {}",
                r.dtype.label(),
                r.overlap
            );
            assert!(r.ndcg_at_k > 0.5);
            if r.dtype == PanelDtype::F64 {
                assert!((r.overlap - 1.0).abs() < 1e-12);
                assert!((r.ndcg_at_k - 1.0).abs() < 1e-12);
            }
        }
        let i8_row = rows
            .iter()
            .find(|r| r.dtype == PanelDtype::ScaledI8)
            .unwrap();
        assert!((i8_row.bytes_per_item - 48.0).abs() < 1e-9); // dim 32 + scale + bias
    }

    #[test]
    fn report_shape_is_valid() {
        let m = QuantMeasurement {
            m: 1_000_000,
            k: 10,
            users: 16,
            dim: 32,
            threads: 8,
            dtype: PanelDtype::ScaledI8,
            bytes_per_item: 48.0,
            exact_f64_ms: 700.0,
            quant_ms: 175.0,
            overlap: 0.98,
            ndcg_at_k: 0.975,
            allocs_per_batch: 0.0,
        };
        let json = render_report(&[m]);
        assert!(json.contains("\"schema\": \"dt-bench/quant/v1\""));
        assert!(json.contains("\"dtype\": \"scaled_i8\""));
        assert!(json.contains("\"bytes_per_item\": 48.0"));
        assert!(json.contains("\"speedup_vs_f64\": 4.00"));
        assert!(json.contains("\"items_per_sec\": 91428571"));
        assert!(json.contains("\"overlap\": 0.9800"));
        assert!(json.contains("\"ndcg_at_k\": 0.9750"));
        assert!(json.contains("\"allocs_per_batch\": 0.0"));
        assert!(json.contains("\"git_rev\": \""));
        assert!(json.trim_end().ends_with('}'));
    }
}
