//! Kernel throughput report: before/after numbers for `BENCH_kernels.json`.
//!
//! Criterion gives per-benchmark statistics, but the acceptance artefact for
//! the parallel-kernel work is a single machine-readable file comparing the
//! naive seed loops against the blocked kernels, sequential and parallel, at
//! the paper's tall-skinny shapes. This module measures exactly that with a
//! plain `Instant` best-of-N harness (std-only, so the offline verification
//! shim can run it too) and hand-rolls the JSON — no serde needed.

use std::fmt::Write as _;
use std::path::Path;
use std::time::Instant;

use dt_tensor::{reference, Tensor};

/// Short git revision of the working tree (`git rev-parse --short HEAD`),
/// or `"unknown"` when git is unavailable or the cwd is not a repository.
/// Validated to be plain hex before it is embedded in a report, so a
/// mangled git invocation can never corrupt the JSON.
#[must_use]
pub fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty() && s.chars().all(|c| c.is_ascii_hexdigit()))
        .unwrap_or_else(|| "unknown".to_string())
}

/// Host hardware thread count for the report header: validated to be at
/// least 1 (a zero or unreadable `available_parallelism` falls back to 1,
/// so downstream tooling can divide by it unconditionally).
#[must_use]
pub fn host_threads() -> usize {
    std::thread::available_parallelism()
        .map_or(1, std::num::NonZeroUsize::get)
        .max(1)
}

/// Shared JSON report header: the opening brace plus the `schema`,
/// `note`, `git_rev`, and `host_threads` fields every bench artefact
/// leads with, and `pool_threads` when the caller passes one. Every
/// emitter used to hand-roll these lines; factoring them here keeps the
/// probes and the field order identical across artefacts by
/// construction. The caller appends its `"results"` array and the
/// closing brace.
#[must_use]
pub fn bench_header(schema: &str, note: &str, pool_threads: Option<usize>) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"schema\": \"{schema}\",");
    let _ = writeln!(s, "  \"note\": \"{note}\",");
    let _ = writeln!(s, "  \"git_rev\": \"{}\",", git_rev());
    let _ = writeln!(s, "  \"host_threads\": {},", host_threads());
    if let Some(threads) = pool_threads {
        let _ = writeln!(s, "  \"pool_threads\": {threads},");
    }
    s
}

/// One kernel × shape measurement. Times are the best of several reps.
pub struct Measurement {
    pub kernel: &'static str,
    pub m: usize,
    pub k: usize,
    pub n: usize,
    pub flops: usize,
    pub naive_ms: f64,
    pub blocked_seq_ms: f64,
    pub parallel_ms: f64,
}

impl Measurement {
    fn gflops(&self, ms: f64) -> f64 {
        if ms <= 0.0 {
            return 0.0;
        }
        self.flops as f64 / (ms * 1e6)
    }
}

/// Deterministic xorshift64* fill — the report must not depend on `rand`.
fn filled(rows: usize, cols: usize, mut state: u64) -> Tensor {
    let data = (0..rows * cols)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64 / (1u64 << 52) as f64 - 1.0
        })
        .collect();
    Tensor::from_vec(rows, cols, data)
}

/// Best-of-`reps` wall time in milliseconds.
fn time_ms(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
    }
    best
}

/// Repetition count scaled so each cell costs roughly the same wall time;
/// never fewer than 2 so a single cold run (page faults, allocator warm-up)
/// cannot be the reported number.
fn reps_for(flops: usize) -> usize {
    (4_000_000_000 / flops.max(1)).clamp(2, 5)
}

/// Measures one (kernel, shape) cell: naive reference vs blocked sequential
/// vs blocked parallel.
fn measure(
    kernel: &'static str,
    m: usize,
    k: usize,
    n: usize,
    naive: impl Fn() -> Tensor,
    blocked: impl Fn() -> Tensor,
) -> Measurement {
    let flops = 2 * m * k * n;
    let reps = reps_for(flops);
    let naive_ms = time_ms(reps, || {
        std::hint::black_box(naive());
    });
    let blocked_seq_ms = time_ms(reps, || {
        std::hint::black_box(dt_parallel::run_sequential(&blocked));
    });
    let parallel_ms = time_ms(reps, || {
        std::hint::black_box(blocked());
    });
    Measurement {
        kernel,
        m,
        k,
        n,
        flops,
        naive_ms,
        blocked_seq_ms,
        parallel_ms,
    }
}

/// The paper-class tall-skinny shapes: 4096×k · k×4096 for `matmul`, and the
/// matching 4096-tall reductions for `matmul_tn` (Gram-style k×k output) and
/// `matmul_nt` (4096×4096 output, k=8 only — larger k only scales the same
/// kernel loop).
pub fn run_measurements() -> Vec<Measurement> {
    let mut out = Vec::new();
    for k in [8, 64, 256] {
        let a = filled(4096, k, 0x9E37_79B9 ^ k as u64);
        let b = filled(k, 4096, 0xBF58_476D ^ k as u64);
        out.push(measure(
            "matmul",
            4096,
            k,
            4096,
            || reference::matmul(&a, &b),
            || a.matmul(&b),
        ));
    }
    for k in [8, 64, 256] {
        let a = filled(4096, k, 0x94D0_49BB ^ k as u64);
        let b = filled(4096, k, 0xD6E8_FEB8 ^ k as u64);
        out.push(measure(
            "matmul_tn",
            k,
            4096,
            k,
            || reference::matmul_tn(&a, &b),
            || a.matmul_tn(&b),
        ));
    }
    {
        let a = filled(4096, 8, 0x2545_F491);
        let b = filled(4096, 8, 0x4F6C_DD1D);
        out.push(measure(
            "matmul_nt",
            4096,
            8,
            4096,
            || reference::matmul_nt(&a, &b),
            || a.matmul_nt(&b),
        ));
    }
    out
}

/// Renders the report as JSON.
#[must_use]
pub fn render_report(results: &[Measurement]) -> String {
    let mut s = bench_header(
        "dt-bench/kernels/v2",
        "best-of-N wall times; naive = unblocked seed loops \
         (dt_tensor::reference), blocked = cache-blocked kernels, parallel = \
         blocked kernels on the dt-parallel pool. Parallel speedup needs a \
         multi-core host.",
        Some(dt_parallel::num_threads()),
    );
    s.push_str("  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        let sep = if i + 1 == results.len() { "" } else { "," };
        let _ = writeln!(
            s,
            "    {{\"kernel\": \"{}\", \"m\": {}, \"k\": {}, \"n\": {}, \
             \"naive_ms\": {:.3}, \"blocked_seq_ms\": {:.3}, \"parallel_ms\": {:.3}, \
             \"gflops_naive\": {:.3}, \"gflops_blocked_seq\": {:.3}, \"gflops_parallel\": {:.3}, \
             \"speedup_blocked_vs_naive\": {:.2}, \"speedup_parallel_vs_naive\": {:.2}}}{sep}",
            r.kernel,
            r.m,
            r.k,
            r.n,
            r.naive_ms,
            r.blocked_seq_ms,
            r.parallel_ms,
            r.gflops(r.naive_ms),
            r.gflops(r.blocked_seq_ms),
            r.gflops(r.parallel_ms),
            r.naive_ms / r.blocked_seq_ms.max(1e-9),
            r.naive_ms / r.parallel_ms.max(1e-9),
        );
    }
    s.push_str("  ]\n}\n");
    s
}

/// Runs the measurements and writes `BENCH_kernels.json` to `path`.
///
/// # Errors
/// Propagates the underlying file-write error.
pub fn write_kernel_report(path: &Path) -> std::io::Result<()> {
    let results = run_measurements();
    std::fs::write(path, render_report(&results))?;
    for r in &results {
        eprintln!(
            "{:>9} {:4}x{:<3}x{:<4}  naive {:8.2} ms  blocked {:8.2} ms  parallel {:8.2} ms",
            r.kernel, r.m, r.k, r.n, r.naive_ms, r.blocked_seq_ms, r.parallel_ms
        );
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_is_valid_shape_and_monotone_flops() {
        let m = Measurement {
            kernel: "matmul",
            m: 4096,
            k: 64,
            n: 4096,
            flops: 2 * 4096 * 64 * 4096,
            naive_ms: 10.0,
            blocked_seq_ms: 5.0,
            parallel_ms: 2.5,
        };
        assert!((m.gflops(10.0) - m.flops as f64 / 1e7).abs() < 1e-9);
        let json = render_report(&[m]);
        assert!(json.contains("\"schema\": \"dt-bench/kernels/v2\""));
        assert!(json.contains("\"speedup_blocked_vs_naive\": 2.00"));
        assert!(json.contains("\"speedup_parallel_vs_naive\": 4.00"));
        assert!(json.contains("\"git_rev\": \""));
        assert!(json.trim_end().ends_with('}'));
    }

    #[test]
    fn reps_scale_inversely_with_work() {
        assert_eq!(reps_for(1), 5);
        assert_eq!(reps_for(2_000_000_000), 2);
        assert_eq!(reps_for(usize::MAX), 2);
    }

    #[test]
    fn git_rev_is_hex_or_unknown() {
        let rev = git_rev();
        assert!(
            rev == "unknown" || (!rev.is_empty() && rev.chars().all(|c| c.is_ascii_hexdigit())),
            "unexpected git_rev {rev:?}"
        );
    }

    #[test]
    fn host_threads_is_at_least_one() {
        assert!(host_threads() >= 1);
    }

    #[test]
    fn bench_header_fields_are_ordered_and_optional_pool_threads_works() {
        let bare = bench_header("dt-bench/x/v1", "a note", None);
        let lines: Vec<&str> = bare.lines().collect();
        assert_eq!(lines[0], "{");
        assert_eq!(lines[1], "  \"schema\": \"dt-bench/x/v1\",");
        assert_eq!(lines[2], "  \"note\": \"a note\",");
        assert!(lines[3].starts_with("  \"git_rev\": \""));
        assert!(lines[4].starts_with("  \"host_threads\": "));
        assert_eq!(lines.len(), 5);
        let pooled = bench_header("dt-bench/x/v1", "a note", Some(7));
        assert!(pooled.lines().nth(5) == Some("  \"pool_threads\": 7,"));
    }
}
