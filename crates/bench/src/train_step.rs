//! Training-step report: dense vs row-sparse gradient path for
//! `BENCH_train_step.json`.
//!
//! The acceptance artefact for the row-sparse gradient work is a single
//! machine-readable file timing one DT-IPS-shaped training step — a
//! propensity update on a `4B` uniform batch followed by an IPS-weighted
//! rating update on a `B` observed batch, both through embedding gathers
//! over `M×K` tables and an Adam step — with the gradients carried densely
//! (the pre-row-sparse behaviour: `Params::densify_grads` plus
//! [`GradMode::DenseEquivalent`]) versus row-sparsely (the default lazy
//! path). Dense-path cost is `O(M·K)` per step regardless of batch size;
//! the sparse path touches only the gathered rows, so the gap widens with
//! the table height `M`. Like [`crate::report`], the harness is a plain
//! `Instant` best-of-N (std-only, so the offline verification shim can run
//! it) and the JSON is hand-rolled.

use std::fmt::Write as _;
use std::path::Path;
use std::rc::Rc;
use std::time::Instant;

use dt_autograd::{Graph, ParamId, Params};
use dt_optim::{Adam, GradMode, Optimizer};
use dt_tensor::Tensor;

/// Deterministic xorshift64* stream — the report must not depend on `rand`.
struct XorShift(u64);

impl XorShift {
    fn next_u64(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform in `[-1, 1)`.
    fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 52) as f64 - 1.0
    }

    fn index(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

/// The two embedding-backed models a DT-IPS step trains: a rating MF and a
/// propensity MF, each `M×K` per side, sharing one parameter store so a
/// single optimizer sweep covers the whole step (the shape that matters for
/// the dense-vs-sparse comparison; per-model stores only change bookkeeping).
struct DtIpsModel {
    params: Params,
    user: ParamId,
    item: ParamId,
    p_user: ParamId,
    p_item: ParamId,
}

impl DtIpsModel {
    fn new(m: usize, k: usize, seed: u64) -> Self {
        let mut rng = XorShift(seed | 1);
        let table = |rows: usize, cols: usize, rng: &mut XorShift| {
            let data = (0..rows * cols).map(|_| 0.1 * rng.unit()).collect();
            Tensor::from_vec(rows, cols, data)
        };
        let mut params = Params::new();
        let user = params.add("user_emb", table(m, k, &mut rng));
        let item = params.add("item_emb", table(m, k, &mut rng));
        let p_user = params.add("p_user_emb", table(m, k, &mut rng));
        let p_item = params.add("p_item_emb", table(m, k, &mut rng));
        Self {
            params,
            user,
            item,
            p_user,
            p_item,
        }
    }
}

/// One step's worth of index lists and targets. The index lists are
/// `Rc`-shared exactly as the trainers share them, so the tape clones
/// pointers, not vectors.
struct StepBatch {
    users: Rc<Vec<usize>>,
    items: Rc<Vec<usize>>,
    labels: Tensor,
    ub_users: Rc<Vec<usize>>,
    ub_items: Rc<Vec<usize>>,
    obs: Tensor,
}

fn make_batches(m: usize, b: usize, count: usize, seed: u64) -> Vec<StepBatch> {
    let mut rng = XorShift(seed | 1);
    let draw = |n: usize, rng: &mut XorShift| -> (Rc<Vec<usize>>, Rc<Vec<usize>>, Tensor) {
        let users = Rc::new((0..n).map(|_| rng.index(m)).collect::<Vec<_>>());
        let items = Rc::new((0..n).map(|_| rng.index(m)).collect::<Vec<_>>());
        let y = (0..n).map(|_| f64::from(rng.next_u64() & 1 == 0)).collect();
        (users, items, Tensor::from_vec(n, 1, y))
    };
    (0..count)
        .map(|_| {
            let (users, items, labels) = draw(b, &mut rng);
            let (ub_users, ub_items, obs) = draw(4 * b, &mut rng);
            StepBatch {
                users,
                items,
                labels,
                ub_users,
                ub_items,
                obs,
            }
        })
        .collect()
}

/// Clipped inverse-propensity weights from the current propensity tables
/// (plain inference reads — no tape), as every IPS trainer computes them.
fn ips_weights(params: &Params, p_user: ParamId, p_item: ParamId, b: &StepBatch) -> Tensor {
    let pu = params.value(p_user);
    let pi = params.value(p_item);
    let data = b
        .users
        .iter()
        .zip(b.items.iter())
        .map(|(&u, &i)| {
            let dot: f64 = pu.row(u).iter().zip(pi.row(i)).map(|(a, b)| a * b).sum();
            let p = 1.0 / (1.0 + (-dot).exp());
            1.0 / p.clamp(0.05, 1.0)
        })
        .collect();
    Tensor::from_vec(b.users.len(), 1, data)
}

/// A reusable dense-or-sparse training loop at one `(M, K, B)` scale:
/// fresh model, fresh optimizer, a rotating pool of pre-drawn batches.
pub struct TrainBench {
    model: DtIpsModel,
    opt: Adam,
    densify: bool,
    batches: Vec<StepBatch>,
    next: usize,
}

impl TrainBench {
    /// Builds the harness; `dense` selects the legacy full-table gradient
    /// path (`densify_grads` + [`GradMode::DenseEquivalent`]) instead of
    /// the default lazy row-sparse path.
    #[must_use]
    pub fn new(m: usize, k: usize, b: usize, dense: bool) -> Self {
        let mode = if dense {
            GradMode::DenseEquivalent
        } else {
            GradMode::Lazy
        };
        Self {
            model: DtIpsModel::new(m, k, 0x9E37_79B9_7F4A_7C15 ^ m as u64),
            opt: Adam::new(0.01).with_grad_mode(mode),
            densify: dense,
            batches: make_batches(m, b, 8, 0xD6E8_FEB8_7F4A_7C15 ^ m as u64),
            next: 0,
        }
    }

    /// Runs one DT-IPS-shaped training step: propensity BCE on the uniform
    /// batch, IPS-weighted rating BCE on the observed batch, one Adam step.
    pub fn step(&mut self) {
        let batch = &self.batches[self.next % self.batches.len()];
        self.next += 1;
        let model = &mut self.model;

        let mut g = Graph::new();
        let put = g.param(&model.params, model.p_user);
        let pu = g.gather(put, Rc::clone(&batch.ub_users));
        let pit = g.param(&model.params, model.p_item);
        let pi = g.gather(pit, Rc::clone(&batch.ub_items));
        let logits = g.row_dot(pu, pi);
        let obs = g.constant(batch.obs.clone());
        let loss = g.bce_mean(logits, obs);
        g.backward(loss, &mut model.params);
        drop(g); // release the tape's table Rcs so the step mutates in place

        let w = ips_weights(&model.params, model.p_user, model.p_item, batch);
        let mut g = Graph::new();
        let ut = g.param(&model.params, model.user);
        let eu = g.gather(ut, Rc::clone(&batch.users));
        let it = g.param(&model.params, model.item);
        let ei = g.gather(it, Rc::clone(&batch.items));
        let logits = g.row_dot(eu, ei);
        let y = g.constant(batch.labels.clone());
        let elem = g.bce_with_logits(logits, y);
        let wv = g.constant(w);
        let loss = g.weighted_mean(wv, elem);
        g.backward(loss, &mut model.params);
        drop(g);

        if self.densify {
            model.params.densify_grads();
        }
        self.opt.step(&mut model.params);
        model.params.zero_grad();
    }

    /// All parameter tensors are finite (test hook).
    #[must_use]
    pub fn all_finite(&self) -> bool {
        self.model.params.all_finite()
    }
}

/// One table-height measurement. Times are the best-of-N per-step averages.
pub struct StepMeasurement {
    pub m: usize,
    pub k: usize,
    pub batch: usize,
    pub dense_ms: f64,
    pub sparse_ms: f64,
}

impl StepMeasurement {
    fn speedup(&self) -> f64 {
        self.dense_ms / self.sparse_ms.max(1e-9)
    }
}

/// Best-of-`reps` average step time in milliseconds over `steps`-step runs.
fn time_steps(bench: &mut TrainBench, reps: usize, steps: usize) -> f64 {
    bench.step(); // warm-up: optimizer state + page faults
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        for _ in 0..steps.max(1) {
            bench.step();
        }
        best = best.min(t0.elapsed().as_secs_f64() * 1e3 / steps.max(1) as f64);
    }
    best
}

/// The paper-class scales: `K = 64`, `B = 128` observed pairs (propensity
/// batch `4B`), table height `M ∈ {10⁴, 10⁵, 10⁶}` rows per side.
pub fn run_measurements() -> Vec<StepMeasurement> {
    let (k, b) = (64, 128);
    [10_000usize, 100_000, 1_000_000]
        .iter()
        .map(|&m| {
            // Scale repetition so the dense arm stays tractable at M = 10⁶
            // (its step cost is O(M·K)); never a single cold run.
            let steps = (200_000 / m).clamp(1, 20);
            let reps = if m >= 1_000_000 { 2 } else { 3 };
            let dense_ms = time_steps(&mut TrainBench::new(m, k, b, true), reps, steps);
            let sparse_ms = time_steps(&mut TrainBench::new(m, k, b, false), reps, steps);
            StepMeasurement {
                m,
                k,
                batch: b,
                dense_ms,
                sparse_ms,
            }
        })
        .collect()
}

/// Renders the report as JSON.
#[must_use]
pub fn render_report(results: &[StepMeasurement]) -> String {
    let threads = dt_parallel::num_threads();
    let host = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"schema\": \"dt-bench/train_step/v1\",");
    let _ = writeln!(
        s,
        "  \"note\": \"best-of-N per-step wall times for one DT-IPS-shaped \
         training step (propensity BCE on a 4B uniform batch + IPS-weighted \
         rating BCE on a B observed batch over M x K tables, one Adam step). \
         dense = Params::densify_grads + GradMode::DenseEquivalent (the \
         legacy full-table path); sparse = row-sparse gradients + lazy \
         Adam.\","
    );
    let _ = writeln!(s, "  \"host_threads\": {host},");
    let _ = writeln!(s, "  \"pool_threads\": {threads},");
    s.push_str("  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        let sep = if i + 1 == results.len() { "" } else { "," };
        let _ = writeln!(
            s,
            "    {{\"m\": {}, \"k\": {}, \"batch\": {}, \
             \"dense_ms\": {:.3}, \"sparse_ms\": {:.3}, \
             \"speedup_sparse_vs_dense\": {:.2}}}{sep}",
            r.m,
            r.k,
            r.batch,
            r.dense_ms,
            r.sparse_ms,
            r.speedup(),
        );
    }
    s.push_str("  ]\n}\n");
    s
}

/// Runs the measurements and writes `BENCH_train_step.json` to `path`.
///
/// # Errors
/// Propagates the underlying file-write error.
pub fn write_train_step_report(path: &Path) -> std::io::Result<()> {
    let results = run_measurements();
    std::fs::write(path, render_report(&results))?;
    for r in &results {
        eprintln!(
            "train_step M={:7} K={} B={}  dense {:10.3} ms  sparse {:8.3} ms  speedup {:6.1}x",
            r.m,
            r.k,
            r.batch,
            r.dense_ms,
            r.sparse_ms,
            r.speedup()
        );
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_arms_train_and_stay_finite() {
        for dense in [true, false] {
            let mut tb = TrainBench::new(64, 4, 8, dense);
            for _ in 0..20 {
                tb.step();
            }
            assert!(tb.all_finite(), "dense={dense}");
        }
    }

    #[test]
    fn ips_weights_are_clipped_inverse_propensities() {
        let model = DtIpsModel::new(16, 3, 7);
        let batches = make_batches(16, 4, 1, 9);
        let w = ips_weights(&model.params, model.p_user, model.p_item, &batches[0]);
        assert_eq!((w.rows(), w.cols()), (4, 1));
        for r in 0..4 {
            let v = w.get(r, 0);
            assert!((1.0..=20.0).contains(&v), "weight {v} outside [1, 1/0.05]");
        }
    }

    #[test]
    fn report_shape_is_valid() {
        let m = StepMeasurement {
            m: 100_000,
            k: 64,
            batch: 128,
            dense_ms: 50.0,
            sparse_ms: 2.0,
        };
        let json = render_report(&[m]);
        assert!(json.contains("\"speedup_sparse_vs_dense\": 25.00"));
        assert!(json.contains("\"schema\": \"dt-bench/train_step/v1\""));
        assert!(json.trim_end().ends_with('}'));
    }
}
