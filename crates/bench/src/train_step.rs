//! Training-step report: dense vs row-sparse vs pooled+fused step for
//! `BENCH_train_step.json`.
//!
//! The acceptance artefact for the row-sparse gradient work (PR 3) and the
//! buffer-pool + fused-kernel work is a single machine-readable file timing
//! one DT-IPS-shaped training step — a propensity update on a `4B` uniform
//! batch followed by an IPS-weighted rating update on a `B` observed batch,
//! both through embedding gathers over `M×K` tables and an Adam step — in
//! three configurations:
//!
//! * **dense** — `Params::densify_grads` plus `GradMode::DenseEquivalent`
//!   (the pre-row-sparse behaviour, `O(M·K)` per step);
//! * **sparse** — row-sparse gradients + lazy Adam with the buffer pool
//!   disabled and the composed-op losses (the PR 3 step, reproduced
//!   in-process via [`dt_tensor::pool::with_disabled`]);
//! * **pooled** — the same sparse path with the step-scoped buffer pool on
//!   and the fused `sigmoid_bce` / `ips_weighted_bce` kernels.
//!
//! Alongside wall times the report carries `allocs_per_step`: the per-step
//! count of buffers drawn from the global allocator, read off the
//! [`dt_tensor::pool::stats`] counters (every tape/kernel buffer routes
//! through the pooled constructors, so the counter sees both arms). Like
//! [`crate::report`], the harness is a plain `Instant` best-of-N (std-only,
//! so the offline verification shim can run it) and the JSON is hand-rolled.

use std::fmt::Write as _;
use std::path::Path;
use std::rc::Rc;
use std::time::Instant;

use dt_autograd::{Graph, ParamId, Params};
use dt_optim::{Adam, GradMode, Optimizer};
use dt_tensor::{pool, Tensor};

/// Deterministic xorshift64* stream — the report must not depend on `rand`.
struct XorShift(u64);

impl XorShift {
    fn next_u64(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform in `[-1, 1)`.
    fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 52) as f64 - 1.0
    }

    fn index(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

/// Which step implementation a [`TrainBench`] runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StepMode {
    /// Legacy full-table gradients: `Params::densify_grads` +
    /// [`GradMode::DenseEquivalent`]; pool off, composed-op losses.
    Dense,
    /// Row-sparse gradients + lazy Adam with the buffer pool disabled and
    /// the composed-op losses — the PR 3 step, bit-identical to `Pooled`.
    Sparse,
    /// Row-sparse gradients + lazy Adam with the step-scoped buffer pool
    /// and the fused BCE kernels (the default production path).
    Pooled,
}

impl StepMode {
    fn dense(self) -> bool {
        self == StepMode::Dense
    }

    fn pooled(self) -> bool {
        self == StepMode::Pooled
    }
}

/// The two embedding-backed models a DT-IPS step trains: a rating MF and a
/// propensity MF, each `M×K` per side, sharing one parameter store so a
/// single optimizer sweep covers the whole step (the shape that matters for
/// the dense-vs-sparse comparison; per-model stores only change bookkeeping).
struct DtIpsModel {
    params: Params,
    user: ParamId,
    item: ParamId,
    p_user: ParamId,
    p_item: ParamId,
}

impl DtIpsModel {
    fn new(m: usize, k: usize, seed: u64) -> Self {
        let mut rng = XorShift(seed | 1);
        let table = |rows: usize, cols: usize, rng: &mut XorShift| {
            let data = (0..rows * cols).map(|_| 0.1 * rng.unit()).collect();
            Tensor::from_vec(rows, cols, data)
        };
        let mut params = Params::new();
        let user = params.add("user_emb", table(m, k, &mut rng));
        let item = params.add("item_emb", table(m, k, &mut rng));
        let p_user = params.add("p_user_emb", table(m, k, &mut rng));
        let p_item = params.add("p_item_emb", table(m, k, &mut rng));
        Self {
            params,
            user,
            item,
            p_user,
            p_item,
        }
    }
}

/// One step's worth of index lists and targets. The index lists are
/// `Rc`-shared exactly as the trainers share them, so the tape clones
/// pointers, not vectors.
struct StepBatch {
    users: Rc<Vec<usize>>,
    items: Rc<Vec<usize>>,
    labels: Tensor,
    ub_users: Rc<Vec<usize>>,
    ub_items: Rc<Vec<usize>>,
    obs: Tensor,
}

fn make_batches(m: usize, b: usize, count: usize, seed: u64) -> Vec<StepBatch> {
    let mut rng = XorShift(seed | 1);
    let draw = |n: usize, rng: &mut XorShift| -> (Rc<Vec<usize>>, Rc<Vec<usize>>, Tensor) {
        let users = Rc::new((0..n).map(|_| rng.index(m)).collect::<Vec<_>>());
        let items = Rc::new((0..n).map(|_| rng.index(m)).collect::<Vec<_>>());
        let y = (0..n).map(|_| f64::from(rng.next_u64() & 1 == 0)).collect();
        (users, items, Tensor::from_vec(n, 1, y))
    };
    (0..count)
        .map(|_| {
            let (users, items, labels) = draw(b, &mut rng);
            let (ub_users, ub_items, obs) = draw(4 * b, &mut rng);
            StepBatch {
                users,
                items,
                labels,
                ub_users,
                ub_items,
                obs,
            }
        })
        .collect()
}

/// Clipped inverse-propensity weights from the current propensity tables
/// (plain inference reads — no tape), as every IPS trainer computes them.
fn ips_weights(params: &Params, p_user: ParamId, p_item: ParamId, b: &StepBatch) -> Tensor {
    let pu = params.value(p_user);
    let pi = params.value(p_item);
    let data = b
        .users
        .iter()
        .zip(b.items.iter())
        .map(|(&u, &i)| {
            let dot: f64 = pu.row(u).iter().zip(pi.row(i)).map(|(a, b)| a * b).sum();
            let p = 1.0 / (1.0 + (-dot).exp());
            1.0 / p.clamp(0.05, 1.0)
        })
        .collect();
    // alloc-ok: B×1 weight column assembled from the collect above; sized by the batch and freed with it
    Tensor::from_vec(b.users.len(), 1, data)
}

/// A reusable training loop at one `(M, K, B)` scale: fresh model, fresh
/// optimizer, a rotating pool of pre-drawn batches, one [`StepMode`].
pub struct TrainBench {
    model: DtIpsModel,
    opt: Adam,
    mode: StepMode,
    batches: Vec<StepBatch>,
    next: usize,
}

impl TrainBench {
    /// Builds the harness for one step configuration.
    #[must_use]
    pub fn new(m: usize, k: usize, b: usize, mode: StepMode) -> Self {
        let grad_mode = if mode.dense() {
            GradMode::DenseEquivalent
        } else {
            GradMode::Lazy
        };
        Self {
            model: DtIpsModel::new(m, k, 0x9E37_79B9_7F4A_7C15 ^ m as u64),
            opt: Adam::new(0.01).with_grad_mode(grad_mode),
            mode,
            batches: make_batches(m, b, 8, 0xD6E8_FEB8_7F4A_7C15 ^ m as u64),
            next: 0,
        }
    }

    /// Runs one DT-IPS-shaped training step: propensity BCE on the uniform
    /// batch, IPS-weighted rating BCE on the observed batch, one Adam step.
    /// Non-[`StepMode::Pooled`] modes run with the buffer pool disabled so
    /// the three arms are directly comparable in one process.
    pub fn step(&mut self) {
        if self.mode.pooled() {
            self.step_inner();
        } else {
            pool::with_disabled(|| self.step_inner());
        }
    }

    fn step_inner(&mut self) {
        let batch = &self.batches[self.next % self.batches.len()];
        self.next += 1;
        let model = &mut self.model;
        let fused = self.mode.pooled();

        let mut g = Graph::new();
        let put = g.param(&model.params, model.p_user);
        let pu = g.gather(put, Rc::clone(&batch.ub_users));
        let pit = g.param(&model.params, model.p_item);
        let pi = g.gather(pit, Rc::clone(&batch.ub_items));
        let logits = g.row_dot(pu, pi);
        let obs = g.constant(batch.obs.clone());
        let loss = if fused {
            g.sigmoid_bce_mean(logits, obs)
        } else {
            g.bce_mean_composed(logits, obs)
        };
        g.backward(loss, &mut model.params);
        drop(g); // release the tape's table Rcs so the step mutates in place

        let w = ips_weights(&model.params, model.p_user, model.p_item, batch);
        let mut g = Graph::new();
        let ut = g.param(&model.params, model.user);
        let eu = g.gather(ut, Rc::clone(&batch.users));
        let it = g.param(&model.params, model.item);
        let ei = g.gather(it, Rc::clone(&batch.items));
        let logits = g.row_dot(eu, ei);
        let y = g.constant(batch.labels.clone());
        let wv = g.constant(w);
        let loss = if fused {
            g.ips_weighted_bce_mean(wv, logits, y)
        } else {
            let elem = g.bce_with_logits(logits, y);
            g.weighted_mean(wv, elem)
        };
        g.backward(loss, &mut model.params);
        drop(g);

        if self.mode.dense() {
            model.params.densify_grads();
        }
        self.opt.step(&mut model.params);
        model.params.zero_grad();
    }

    /// All parameter tensors are finite (test hook).
    #[must_use]
    pub fn all_finite(&self) -> bool {
        self.model.params.all_finite()
    }

    /// Sum of all parameter elements (bit-identity test hook).
    #[must_use]
    pub fn param_checksum(&self) -> f64 {
        [
            self.model.user,
            self.model.item,
            self.model.p_user,
            self.model.p_item,
        ]
        .iter()
        .map(|&id| self.model.params.value(id).sum())
        .sum()
    }
}

/// One table-height measurement. Times are the best-of-N per-step averages;
/// alloc counts are exact per-step [`pool::stats`] deltas.
pub struct StepMeasurement {
    pub m: usize,
    pub k: usize,
    pub batch: usize,
    pub dense_ms: f64,
    pub sparse_ms: f64,
    pub pooled_ms: f64,
    pub sparse_allocs_per_step: f64,
    pub pooled_allocs_per_step: f64,
}

impl StepMeasurement {
    fn speedup_sparse(&self) -> f64 {
        self.dense_ms / self.sparse_ms.max(1e-9)
    }

    fn speedup_pooled(&self) -> f64 {
        self.sparse_ms / self.pooled_ms.max(1e-9)
    }

    /// Fraction of per-step allocator traffic the pool removed.
    fn alloc_reduction(&self) -> f64 {
        if self.sparse_allocs_per_step <= 0.0 {
            return 0.0;
        }
        1.0 - self.pooled_allocs_per_step / self.sparse_allocs_per_step
    }
}

/// Best-of-`reps` average step time in milliseconds over `steps`-step runs.
fn time_steps(bench: &mut TrainBench, reps: usize, steps: usize) -> f64 {
    // Warm-up: optimizer state, page faults, and one full rotation of the
    // pre-drawn batches so every recurring tape shape is parked in the pool.
    for _ in 0..bench.batches.len() {
        bench.step();
    }
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        for _ in 0..steps.max(1) {
            bench.step();
        }
        best = best.min(t0.elapsed().as_secs_f64() * 1e3 / steps.max(1) as f64);
    }
    best
}

/// Average fresh allocations per step over `steps` post-warm-up steps,
/// read off the global [`pool::stats`] counters. The pooled constructors
/// count misses whether or not the pool is enabled, so the same probe
/// measures both the sparse (pool-off) and pooled arms.
fn allocs_per_step(bench: &mut TrainBench, steps: usize) -> f64 {
    // Warm up with a full batch rotation so the pooled arm measures steady
    // state (every merge/tape shape the rotating batches produce is parked).
    for _ in 0..bench.batches.len() {
        bench.step();
    }
    let before = pool::stats();
    for _ in 0..steps.max(1) {
        bench.step();
    }
    let after = pool::stats();
    (after.fresh_allocs - before.fresh_allocs) as f64 / steps.max(1) as f64
}

/// The paper-class scales: `K = 64`, `B = 128` observed pairs (propensity
/// batch `4B`), table height `M ∈ {10⁴, 10⁵, 10⁶}` rows per side.
pub fn run_measurements() -> Vec<StepMeasurement> {
    let (k, b) = (64, 128);
    [10_000usize, 100_000, 1_000_000]
        .iter()
        .map(|&m| {
            // Scale the dense arm's repetition so it stays tractable at
            // M = 10⁶ (its step cost is O(M·K)); never a single cold run.
            // The sparse/pooled arms are batch-bound and cheap at every M,
            // so they always get a full 20-step sample.
            let dense_steps = (200_000 / m).clamp(1, 20);
            let light_steps = 20;
            let reps = if m >= 1_000_000 { 2 } else { 3 };
            let dense_ms = time_steps(
                &mut TrainBench::new(m, k, b, StepMode::Dense),
                reps,
                dense_steps,
            );
            // Each arm's model is 4·M·K doubles; drop one bench before
            // building the next so the arms never run under the memory
            // pressure of a neighbour's live tables.
            let mut sparse = TrainBench::new(m, k, b, StepMode::Sparse);
            let sparse_ms = time_steps(&mut sparse, reps, light_steps);
            let sparse_allocs_per_step = allocs_per_step(&mut sparse, light_steps);
            drop(sparse);
            let mut pooled = TrainBench::new(m, k, b, StepMode::Pooled);
            let pooled_ms = time_steps(&mut pooled, reps, light_steps);
            let pooled_allocs_per_step = allocs_per_step(&mut pooled, light_steps);
            StepMeasurement {
                m,
                k,
                batch: b,
                dense_ms,
                sparse_ms,
                pooled_ms,
                sparse_allocs_per_step,
                pooled_allocs_per_step,
            }
        })
        .collect()
}

/// Renders the report as JSON (schema `dt-bench/train_step/v2`).
#[must_use]
pub fn render_report(results: &[StepMeasurement]) -> String {
    let mut s = crate::report::bench_header(
        "dt-bench/train_step/v2",
        "best-of-N per-step wall times for one DT-IPS-shaped \
         training step (propensity BCE on a 4B uniform batch + IPS-weighted \
         rating BCE on a B observed batch over M x K tables, one Adam step). \
         dense = Params::densify_grads + GradMode::DenseEquivalent (the \
         legacy full-table path); sparse = row-sparse gradients + lazy Adam \
         with the buffer pool disabled and composed-op losses (the PR 3 \
         step); pooled = sparse + step-scoped buffer pool + fused \
         sigmoid-BCE kernels. allocs_per_step counts buffers drawn from the \
         global allocator per step (dt_tensor::pool::stats).",
        Some(dt_parallel::num_threads()),
    );
    s.push_str("  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        let sep = if i + 1 == results.len() { "" } else { "," };
        let _ = writeln!(
            s,
            "    {{\"m\": {}, \"k\": {}, \"batch\": {}, \
             \"dense_ms\": {:.3}, \"sparse_ms\": {:.3}, \"pooled_ms\": {:.3}, \
             \"speedup_sparse_vs_dense\": {:.2}, \
             \"speedup_pooled_vs_sparse\": {:.2}, \
             \"sparse_allocs_per_step\": {:.1}, \
             \"pooled_allocs_per_step\": {:.1}, \
             \"alloc_reduction\": {:.3}}}{sep}",
            r.m,
            r.k,
            r.batch,
            r.dense_ms,
            r.sparse_ms,
            r.pooled_ms,
            r.speedup_sparse(),
            r.speedup_pooled(),
            r.sparse_allocs_per_step,
            r.pooled_allocs_per_step,
            r.alloc_reduction(),
        );
    }
    s.push_str("  ]\n}\n");
    s
}

/// Runs the measurements and writes `BENCH_train_step.json` to `path`.
///
/// # Errors
/// Propagates the underlying file-write error.
pub fn write_train_step_report(path: &Path) -> std::io::Result<()> {
    let results = run_measurements();
    std::fs::write(path, render_report(&results))?;
    for r in &results {
        eprintln!(
            "train_step M={:7} K={} B={}  dense {:10.3} ms  sparse {:8.3} ms  \
             pooled {:8.3} ms  pooled-speedup {:4.2}x  allocs {:6.1} -> {:5.1}",
            r.m,
            r.k,
            r.batch,
            r.dense_ms,
            r.sparse_ms,
            r.pooled_ms,
            r.speedup_pooled(),
            r.sparse_allocs_per_step,
            r.pooled_allocs_per_step,
        );
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_arms_train_and_stay_finite() {
        for mode in [StepMode::Dense, StepMode::Sparse, StepMode::Pooled] {
            let mut tb = TrainBench::new(64, 4, 8, mode);
            for _ in 0..20 {
                tb.step();
            }
            assert!(tb.all_finite(), "mode={mode:?}");
        }
    }

    #[test]
    fn sparse_and_pooled_steps_are_bit_identical() {
        let mut sparse = TrainBench::new(64, 4, 8, StepMode::Sparse);
        let mut pooled = TrainBench::new(64, 4, 8, StepMode::Pooled);
        for step in 0..12 {
            sparse.step();
            pooled.step();
            let (a, b) = (sparse.param_checksum(), pooled.param_checksum());
            assert!(
                a.to_bits() == b.to_bits(),
                "step {step}: sparse {a:?} != pooled {b:?}"
            );
        }
    }

    #[test]
    fn pooled_steps_are_bit_identical_across_thread_widths() {
        // Shapes large enough that the gathered blocks cross the parallel
        // kernel thresholds, so the width sweep exercises real fan-out.
        let run = |mode: StepMode| -> Vec<u64> {
            let mut tb = TrainBench::new(4096, 32, 512, mode);
            (0..3)
                .map(|_| {
                    tb.step();
                    tb.param_checksum().to_bits()
                })
                .collect()
        };
        let base = dt_parallel::with_thread_limit(1, || run(StepMode::Sparse));
        for width in [1usize, 2, 8] {
            let sparse = dt_parallel::with_thread_limit(width, || run(StepMode::Sparse));
            let pooled = dt_parallel::with_thread_limit(width, || run(StepMode::Pooled));
            assert_eq!(base, sparse, "fresh-alloc step drifted at width {width}");
            assert_eq!(base, pooled, "pooled step drifted at width {width}");
        }
    }

    #[test]
    fn pooled_arm_reuses_buffers_after_warmup() {
        let mut pooled = TrainBench::new(64, 4, 8, StepMode::Pooled);
        let pooled_allocs = allocs_per_step(&mut pooled, 6);
        let mut sparse = TrainBench::new(64, 4, 8, StepMode::Sparse);
        let sparse_allocs = allocs_per_step(&mut sparse, 6);
        assert!(
            pooled_allocs < 0.1 * sparse_allocs,
            "pooled {pooled_allocs} vs sparse {sparse_allocs}"
        );
    }

    #[test]
    fn ips_weights_are_clipped_inverse_propensities() {
        let model = DtIpsModel::new(16, 3, 7);
        let batches = make_batches(16, 4, 1, 9);
        let w = ips_weights(&model.params, model.p_user, model.p_item, &batches[0]);
        assert_eq!((w.rows(), w.cols()), (4, 1));
        for r in 0..4 {
            let v = w.get(r, 0);
            assert!((1.0..=20.0).contains(&v), "weight {v} outside [1, 1/0.05]");
        }
    }

    #[test]
    fn report_shape_is_valid() {
        let m = StepMeasurement {
            m: 100_000,
            k: 64,
            batch: 128,
            dense_ms: 50.0,
            sparse_ms: 2.0,
            pooled_ms: 1.0,
            sparse_allocs_per_step: 200.0,
            pooled_allocs_per_step: 10.0,
        };
        let json = render_report(&[m]);
        assert!(json.contains("\"schema\": \"dt-bench/train_step/v2\""));
        assert!(json.contains("\"speedup_sparse_vs_dense\": 25.00"));
        assert!(json.contains("\"speedup_pooled_vs_sparse\": 2.00"));
        assert!(json.contains("\"alloc_reduction\": 0.950"));
        assert!(json.contains("\"git_rev\": \""));
        assert!(json.trim_end().ends_with('}'));
    }

    #[test]
    fn report_host_threads_is_validated() {
        let json = render_report(&[]);
        let host = json
            .lines()
            .find_map(|l| l.trim().strip_prefix("\"host_threads\": "))
            .and_then(|v| v.trim_end_matches(',').parse::<usize>().ok())
            .expect("host_threads field present and numeric");
        assert!(host >= 1);
        assert_eq!(host, crate::report::host_threads());
    }
}
