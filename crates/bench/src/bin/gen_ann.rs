//! Offline generator for `BENCH_ann.json`: the IVF recall/latency
//! frontier without the criterion harness, so the artefact can be
//! (re)built in environments where `cargo bench` is unavailable (the
//! offline `.verify` shim). Sweeps `nlist` × `nprobe` × `M` × `K` at the
//! pool widths in [`dt_bench::serve::SWEEP_WIDTHS`] in-process.
//!
//! Usage: `gen_ann [output-path]` (default: `BENCH_ann.json` at the repo
//! root, resolved relative to this crate).

fn main() {
    let default = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_ann.json").to_string();
    let path = std::env::args().nth(1).unwrap_or(default);
    eprintln!("writing ann report to {path}");
    if let Err(e) = dt_bench::ann::write_ann_report(std::path::Path::new(&path)) {
        eprintln!("failed to write {path}: {e}");
        std::process::exit(1);
    }
}
