//! Offline generator for `BENCH_quant.json`: the mixed-precision
//! accuracy-vs-bandwidth frontier without the criterion harness, so the
//! artefact can be (re)built in environments where `cargo bench` is
//! unavailable (the offline `.verify` shim). Sweeps dtype ×
//! `M ∈ {10⁴, 10⁵, 10⁶}` × `K ∈ {10, 50}` at the pool widths in
//! [`dt_bench::serve::SWEEP_WIDTHS`] in-process.
//!
//! Usage: `gen_quant [--smoke] [output-path]`. The default output is
//! `BENCH_quant.json` at the repo root, resolved relative to this crate.
//! `--smoke` trims the sweep to `M = 10⁴` at the ambient pool width and
//! defaults the output to a scratch file under the system temp dir, so a
//! CI run exercises every dtype arm (including the f64 bit-identity
//! assert) in seconds without touching the committed artefact.

fn main() {
    let mut smoke = false;
    let mut path: Option<String> = None;
    for arg in std::env::args().skip(1) {
        if arg == "--smoke" {
            smoke = true;
        } else {
            path = Some(arg);
        }
    }
    let path = path.unwrap_or_else(|| {
        if smoke {
            std::env::temp_dir()
                .join("BENCH_quant_smoke.json")
                .to_string_lossy()
                .into_owned()
        } else {
            concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_quant.json").to_string()
        }
    });
    eprintln!(
        "writing {} quant report to {path}",
        if smoke { "smoke" } else { "full" }
    );
    let result = if smoke {
        dt_bench::quant::write_quant_smoke_report(std::path::Path::new(&path))
    } else {
        dt_bench::quant::write_quant_report(std::path::Path::new(&path))
    };
    if let Err(e) = result {
        eprintln!("failed to write {path}: {e}");
        std::process::exit(1);
    }
}
