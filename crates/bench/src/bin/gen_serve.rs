//! Offline generator for `BENCH_serve.json`: the serve-latency artefact
//! without the criterion harness, so the report can be (re)built in
//! environments where `cargo bench` is unavailable (the offline `.verify`
//! shim). Sweeps the pool widths in [`dt_bench::serve::SWEEP_WIDTHS`]
//! in-process — one results row per width.
//!
//! Usage: `gen_serve [output-path]` (default: `BENCH_serve.json` at the
//! repo root, resolved relative to this crate).

fn main() {
    let default = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json").to_string();
    let path = std::env::args().nth(1).unwrap_or(default);
    eprintln!("writing serve report to {path}");
    if let Err(e) = dt_bench::serve::write_serve_report(std::path::Path::new(&path)) {
        eprintln!("failed to write {path}: {e}");
        std::process::exit(1);
    }
}
