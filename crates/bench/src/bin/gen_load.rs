//! Offline generator for `BENCH_load.json`: the serving stack under
//! replayed heavy traffic, driven end to end by the `dt-load` harness
//! (Zipf generators → bounded admission queue → max-batch/max-delay
//! batching workers → engine arms). Sweeps engine arm × intra-query
//! width ([`dt_bench::serve::SWEEP_WIDTHS`]) × offered load × batching
//! policy; every row is one timed steady-state experiment.
//!
//! Usage: `gen_load [--smoke] [output-path]`. The default output is
//! `BENCH_load.json` at the repo root, resolved relative to this crate.
//! `--smoke` trims the sweep (tiny catalog, ambient width, short
//! windows) and defaults the output to a scratch file under the system
//! temp dir, so a CI run exercises every arm, both policies and both
//! load points in seconds without touching the committed artefact.

fn main() {
    let mut smoke = false;
    let mut path: Option<String> = None;
    for arg in std::env::args().skip(1) {
        if arg == "--smoke" {
            smoke = true;
        } else {
            path = Some(arg);
        }
    }
    let path = path.unwrap_or_else(|| {
        if smoke {
            std::env::temp_dir()
                .join("BENCH_load_smoke.json")
                .to_string_lossy()
                .into_owned()
        } else {
            concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_load.json").to_string()
        }
    });
    eprintln!(
        "writing {} load report to {path}",
        if smoke { "smoke" } else { "full" }
    );
    let result = if smoke {
        dt_bench::load::write_load_smoke_report(std::path::Path::new(&path))
    } else {
        dt_bench::load::write_load_report(std::path::Path::new(&path))
    };
    if let Err(e) = result {
        eprintln!("failed to write {path}: {e}");
        std::process::exit(1);
    }
}
