//! Serving-latency report: full-sort vs partial-selection top-K for
//! `BENCH_serve.json`.
//!
//! The acceptance artefact for the `dt-serve` retrieval engine is a single
//! machine-readable file timing one batched full-catalog top-K query —
//! sixteen users scored against all `M` items through the blocked
//! gather-GEMM kernel, then cut to each user's top K — in two arms:
//!
//! * **full_sort** — the seed selection: every user's `M` scores are
//!   materialised as `(item, score)` entries and fully sorted
//!   (`O(M log M)` per user) before truncating to K;
//! * **partial** — [`dt_serve::TopKEngine`]: the same block scores cut by
//!   the bounded-heap kernel in `O(M + K log K)` per user, writing into a
//!   reused [`dt_serve::TopKBatch`].
//!
//! Both arms score through the same pooled block kernel and use the same
//! tie-breaking, so they return identical batches — the report measures
//! selection strategy, nothing else. `partial_allocs_per_batch` is the
//! per-query-batch count of buffers drawn from the global allocator after
//! warm-up ([`dt_tensor::pool::stats`] delta); the engine's steady state
//! is zero. Since v3 the sweep repeats per pool width ([`SWEEP_WIDTHS`],
//! forced in-process through `dt_parallel::with_thread_limit`) with one
//! results row per width, so the artefact is no longer blind to the width
//! it ran at. Like [`crate::report`], the harness is a plain `Instant`
//! best-of-N (std-only, so the offline verification shim can run it) and
//! the JSON is hand-rolled.

use std::fmt::Write as _;
use std::path::Path;
use std::time::Instant;

use dt_serve::{Ranked, ScoringIndex, TopKBatch, TopKEngine};
use dt_tensor::pool;
use dt_tensor::topk::rank_cmp;
use dt_tensor::Tensor;

/// Deterministic xorshift64* fill — the report must not depend on `rand`.
fn filled(rows: usize, cols: usize, mut state: u64) -> Tensor {
    state |= 1;
    let data = (0..rows * cols)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64 / (1u64 << 52) as f64 - 1.0
        })
        .collect();
    Tensor::from_vec(rows, cols, data)
}

/// A serving index over random panels at one catalog size.
#[must_use]
pub fn build_index(n_users: usize, n_items: usize, dim: usize, seed: u64) -> ScoringIndex {
    let p = filled(n_users, dim, seed ^ 0x9E37_79B9);
    let q = filled(n_items, dim, seed ^ 0xBF58_476D);
    let ub = filled(n_users, 1, seed ^ 0x94D0_49BB).data().to_vec();
    let ib = filled(n_items, 1, seed ^ 0xD6E8_FEB8).data().to_vec();
    ScoringIndex::new(p, q, ub, ib, 0.1)
}

/// The seed arm: block scoring through the same pooled kernel, then a full
/// `O(M log M)` sort per user before truncating to K. Identical output to
/// [`TopKEngine::recommend_into`] (same scores, same tie order).
pub fn full_sort_batch(
    index: &ScoringIndex,
    users: &[usize],
    k: usize,
    block: usize,
    scratch: &mut Vec<Ranked>,
    out: &mut TopKBatch,
) {
    out.reset(users.len(), k);
    if users.is_empty() || k == 0 {
        return;
    }
    let mut lo = 0;
    while lo < users.len() {
        let hi = (lo + block.max(1)).min(users.len());
        let scores = index.score_block(&users[lo..hi]);
        for j in 0..hi - lo {
            scratch.clear();
            scratch.extend(scores.row(j).iter().enumerate().map(|(i, &score)| Ranked {
                item: i as u32,
                score,
            }));
            scratch.sort_unstable_by(rank_cmp);
            let slot = out.user_mut(lo + j);
            let n = slot.len().min(scratch.len());
            slot[..n].copy_from_slice(&scratch[..n]);
            out.set_count(lo + j, n);
        }
        scores.recycle();
        lo = hi;
    }
}

/// One `(M, K, threads)` measurement. Times are best-of-N per-query-batch
/// wall times over the same sixteen-user query; `threads` is the pool
/// width forced through `dt_parallel::with_thread_limit` for the row.
pub struct ServeMeasurement {
    pub m: usize,
    pub k: usize,
    pub users: usize,
    pub dim: usize,
    pub threads: usize,
    pub full_sort_ms: f64,
    pub partial_ms: f64,
    pub partial_allocs_per_batch: f64,
}

impl ServeMeasurement {
    fn speedup(&self) -> f64 {
        self.full_sort_ms / self.partial_ms.max(1e-9)
    }

    fn users_per_sec(&self, ms: f64) -> f64 {
        if ms <= 0.0 {
            return 0.0;
        }
        self.users as f64 / (ms / 1e3)
    }

    fn items_per_sec(&self, ms: f64) -> f64 {
        self.users_per_sec(ms) * self.m as f64
    }
}

/// Best-of-`reps` wall time in milliseconds.
fn time_ms(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
    }
    best
}

/// The catalog sweep: `M ∈ {10⁴, 10⁵, 10⁶}` items, `K ∈ {10, 50}`,
/// sixteen queried users over `dim = 32` panels — at every pool width in
/// `widths`, forced in-process through `dt_parallel::with_thread_limit`
/// (one results row per width; widths beyond the host's hardware threads
/// still run, they just oversubscribe, and the row's `host_threads`
/// column makes that visible).
#[must_use]
pub fn run_measurements(widths: &[usize]) -> Vec<ServeMeasurement> {
    let (n_users, dim, n_query) = (2048usize, 32usize, 16usize);
    let engine = TopKEngine::new();
    let mut out = Vec::new();
    for &m in &[10_000usize, 100_000, 1_000_000] {
        let index = build_index(n_users, m, dim, 0x5EED ^ m as u64);
        let users: Vec<usize> = (0..n_query).map(|j| (j * 131) % n_users).collect();
        let block = engine.block_users(m);
        let reps = if m >= 1_000_000 { 2 } else { 4 };
        for &threads in widths {
            for &k in &[10usize, 50] {
                let row = dt_parallel::with_thread_limit(threads, || {
                    let mut batch = TopKBatch::new();
                    engine.recommend_into(&index, &users, k, None, &mut batch); // warm-up
                    let partial_ms = time_ms(reps, || {
                        engine.recommend_into(&index, &users, k, None, &mut batch);
                    });
                    let probe_batches = 5usize;
                    let before = pool::stats();
                    for _ in 0..probe_batches {
                        engine.recommend_into(&index, &users, k, None, &mut batch);
                    }
                    let after = pool::stats();
                    let partial_allocs_per_batch =
                        (after.fresh_allocs - before.fresh_allocs) as f64 / probe_batches as f64;

                    let mut scratch = Vec::new();
                    let mut sorted = TopKBatch::new();
                    full_sort_batch(&index, &users, k, block, &mut scratch, &mut sorted); // warm-up
                    let full_sort_ms = time_ms(reps, || {
                        full_sort_batch(&index, &users, k, block, &mut scratch, &mut sorted);
                    });
                    assert_eq!(
                        sorted, batch,
                        "selection arms disagree at M={m} K={k} threads={threads}"
                    );

                    ServeMeasurement {
                        m,
                        k,
                        users: n_query,
                        dim,
                        threads,
                        full_sort_ms,
                        partial_ms,
                        partial_allocs_per_batch,
                    }
                });
                out.push(row);
            }
        }
    }
    out
}

/// Renders the report as JSON (schema `dt-bench/serve/v3`: v2 plus a
/// per-row `threads`/`host_threads` pair — one results row per forced
/// pool width, fixing the v2 single-thread blind spot).
#[must_use]
pub fn render_report(results: &[ServeMeasurement]) -> String {
    let host = crate::report::host_threads();
    let mut s = crate::report::bench_header(
        "dt-bench/serve/v3",
        "best-of-N wall times for one batched full-catalog \
         top-K query (16 users x all M items, dim-32 panels) through the \
         dt-serve engine, one results row per pool width (threads, forced \
         in-process via dt_parallel::with_thread_limit; host_threads per \
         row records the hardware actually available, so oversubscribed \
         rows are self-describing). Both arms score through the same \
         pooled blocked gather-GEMM; full_sort then sorts every user's M \
         scores (O(M log M), the seed selection), partial cuts them with \
         the bounded-heap kernel (O(M + K log K)) into a reused batch. \
         partial_allocs_per_batch is the post-warm-up \
         dt_tensor::pool::stats fresh-alloc delta per query batch; the \
         engine's steady state is zero.",
        None,
    );
    s.push_str("  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        let sep = if i + 1 == results.len() { "" } else { "," };
        let _ = writeln!(
            s,
            "    {{\"m\": {}, \"k\": {}, \"users\": {}, \"dim\": {}, \
             \"threads\": {}, \"host_threads\": {host}, \
             \"full_sort_ms\": {:.3}, \"partial_ms\": {:.3}, \
             \"speedup_partial_vs_full_sort\": {:.2}, \
             \"users_per_sec_partial\": {:.1}, \
             \"items_scored_per_sec_partial\": {:.0}, \
             \"partial_allocs_per_batch\": {:.1}}}{sep}",
            r.m,
            r.k,
            r.users,
            r.dim,
            r.threads,
            r.full_sort_ms,
            r.partial_ms,
            r.speedup(),
            r.users_per_sec(r.partial_ms),
            r.items_per_sec(r.partial_ms),
            r.partial_allocs_per_batch,
        );
    }
    s.push_str("  ]\n}\n");
    s
}

/// The pool widths every serve/ann artefact sweeps.
pub const SWEEP_WIDTHS: [usize; 3] = [1, 2, 8];

/// Runs the width-sweep measurements and writes `BENCH_serve.json` to
/// `path`.
///
/// # Errors
/// Propagates the underlying file-write error.
pub fn write_serve_report(path: &Path) -> std::io::Result<()> {
    let results = run_measurements(&SWEEP_WIDTHS);
    std::fs::write(path, render_report(&results))?;
    for r in &results {
        eprintln!(
            "serve M={:7} K={:2} t={}  full-sort {:9.3} ms  partial {:8.3} ms  \
             speedup {:5.2}x  allocs/batch {:4.1}",
            r.m,
            r.k,
            r.threads,
            r.full_sort_ms,
            r.partial_ms,
            r.speedup(),
            r.partial_allocs_per_batch,
        );
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arms_agree_on_small_catalogs() {
        let index = build_index(40, 230, 6, 0xFEED);
        let users: Vec<usize> = (0..12).map(|j| (j * 7) % 40).collect();
        let engine = TopKEngine::new();
        for k in [1usize, 9, 230, 300] {
            let fast = engine.recommend(&index, &users, k, None);
            let mut scratch = Vec::new();
            let mut slow = TopKBatch::new();
            full_sort_batch(&index, &users, k, 5, &mut scratch, &mut slow);
            assert_eq!(fast, slow, "k={k}");
        }
    }

    #[test]
    fn measurement_math_is_consistent() {
        let m = ServeMeasurement {
            m: 100_000,
            k: 10,
            users: 16,
            dim: 32,
            threads: 1,
            full_sort_ms: 40.0,
            partial_ms: 10.0,
            partial_allocs_per_batch: 0.0,
        };
        assert!((m.speedup() - 4.0).abs() < 1e-12);
        assert!((m.users_per_sec(10.0) - 1600.0).abs() < 1e-9);
        assert!((m.items_per_sec(10.0) - 160_000_000.0).abs() < 1e-3);
    }

    #[test]
    fn report_shape_is_valid() {
        let m = ServeMeasurement {
            m: 1_000_000,
            k: 50,
            users: 16,
            dim: 32,
            threads: 8,
            full_sort_ms: 100.0,
            partial_ms: 20.0,
            partial_allocs_per_batch: 0.0,
        };
        let json = render_report(&[m]);
        assert!(json.contains("\"schema\": \"dt-bench/serve/v3\""));
        assert!(json.contains("\"speedup_partial_vs_full_sort\": 5.00"));
        assert!(json.contains("\"partial_allocs_per_batch\": 0.0"));
        assert!(json.contains("\"threads\": 8"));
        assert!(json.contains("\"host_threads\": "));
        assert!(json.contains("\"git_rev\": \""));
        assert!(json.trim_end().ends_with('}'));
    }
}
