//! Load-replay report: the serving stack under sustained concurrent
//! traffic, for `BENCH_load.json` (schema `dt-bench/load/v2`).
//!
//! Where `BENCH_serve`/`ann`/`quant` time one query batch in isolation,
//! this report drives the [`dt_load`] harness end to end: Zipf-popular
//! users offered as a Poisson process by generator threads, a bounded
//! admission queue under the shed policy, max-batch/max-delay batching
//! workers, and one [`EngineArm`] per row — exact, item-sharded exact,
//! IVF, and scaled-i8 quantized. Each row is one closed experiment
//! reporting steady-state queries/sec, queue-wait / service / total
//! latency quantiles (p50/p99 from the log-scale
//! [`dt_metrics::LatencyHistogram`], ≤ 12.5 % relative error), the shed
//! rate, the mean dispatched batch size, and a per-arm steady-state
//! alloc probe (post-warm-up [`dt_tensor::pool::stats`] fresh-alloc
//! delta per dispatched batch — zero for every arm).
//!
//! The sweep covers intra-query width ([`crate::serve::SWEEP_WIDTHS`],
//! forced per dispatch through `dt_parallel::with_thread_limit` inside
//! the workers) × engine arm × offered load (an underload and an
//! overload point) × batching policy (single-query vs coalescing) ×
//! result cache (off / per-worker CLOCK / shared sharded — `dt-cache`,
//! schema v2). Cached rows report the whole-run hit rate and stale
//! evictions; cache hits are bitwise identical to fresh dispatch, so
//! the qps lift is pure saved scoring bandwidth, not changed answers.
//! Latency numbers are host-dependent by nature — every row carries
//! `host_threads` so oversubscribed runs are self-describing — but the
//! *offered* traffic is deterministic (seeded per-thread streams) and
//! the retrieval outputs themselves stay bit-identical across widths by
//! the serving determinism contract.

use std::fmt::Write as _;
use std::path::Path;
use std::time::Duration;

use dt_cache::{ClockCache, SharedCache};
use dt_load::{
    dispatch_cached, run_load, AdmissionPolicy, ArmScratch, BatchPolicy, CacheMode, CacheScratch,
    EngineArm, LoadConfig,
};
use dt_serve::{IvfIndex, IvfParams, PanelDtype, TopKBatch, TopKEngine};
use dt_tensor::pool;

/// One sweep point: `(arm, width, offered load, policy, cache)` plus
/// the merged steady-state telemetry of its run.
pub struct LoadMeasurement {
    pub arm: &'static str,
    pub m: usize,
    pub k: usize,
    pub threads: usize,
    pub policy: String,
    pub admission: &'static str,
    pub cache: &'static str,
    pub cache_capacity: usize,
    pub offered_qps: f64,
    pub completed: u64,
    pub measured: u64,
    pub qps: f64,
    pub shed_rate: f64,
    pub mean_batch: f64,
    pub hit_rate: f64,
    pub stale_evictions: u64,
    pub p50_wait_ms: f64,
    pub p99_wait_ms: f64,
    pub p50_service_ms: f64,
    pub p99_service_ms: f64,
    pub p50_total_ms: f64,
    pub p99_total_ms: f64,
    pub allocs_per_batch: f64,
}

/// Generator-pool users, top-K, panel width shared by every row.
const N_USERS: usize = 2048;
const DIM: usize = 32;
const K: usize = 10;

/// Steady-state alloc probe for one `(arm, cache mode)`: warm-up
/// dispatch through the same code path the workers run (uncached
/// dispatch, or probe → miss sub-batch → scatter + insert), then the
/// pool's fresh-alloc delta per batch over `probe_batches` (width 1 —
/// the probe is width-independent by the determinism contract). The
/// probed batches alternate warm and cold users so cached modes
/// exercise the hit, miss, and mixed paths.
fn alloc_probe(engine: &TopKEngine, arm: &EngineArm<'_>, cache: CacheMode) -> f64 {
    let warm: Vec<usize> = (0..64).map(|j| (j * 131) % N_USERS).collect();
    let cold: Vec<usize> = (0..64).map(|j| (j * 67 + 1) % N_USERS).collect();
    let mut local = match cache {
        CacheMode::PerWorker { capacity } => Some(ClockCache::new(capacity, K)),
        CacheMode::Off | CacheMode::Shared { .. } => None,
    };
    let shared = match cache {
        CacheMode::Shared { capacity, shards } => Some(SharedCache::new(capacity, K, shards)),
        CacheMode::Off | CacheMode::PerWorker { .. } => None,
    };
    dt_parallel::with_thread_limit(1, || {
        let mut scratch = ArmScratch::default();
        let mut cs = CacheScratch::default();
        let mut out = TopKBatch::new();
        let mut one = |users: &[usize], scratch: &mut ArmScratch, cs: &mut CacheScratch| match (
            &mut local, &shared,
        ) {
            (Some(cache), _) => {
                dispatch_cached(cache, arm, engine, users, K, None, scratch, cs, &mut out);
            }
            (None, Some(store)) => {
                let mut view = store;
                dispatch_cached(
                    &mut view, arm, engine, users, K, None, scratch, cs, &mut out,
                );
            }
            (None, None) => arm.dispatch(engine, users, K, None, scratch, &mut out),
        };
        // Warm-up must cover the full alternating warm/cold cycle: the
        // miss sub-batch shrinks as the store fills, and the pool keys
        // its free lists by buffer size, so every steady-state
        // sub-batch size has to be seen once before measuring.
        for i in 0..4 {
            one(
                if i % 2 == 0 { &warm } else { &cold },
                &mut scratch,
                &mut cs,
            );
        }
        let probe_batches = 6usize;
        let before = pool::stats();
        for i in 0..probe_batches {
            one(
                if i % 2 == 0 { &warm } else { &cold },
                &mut scratch,
                &mut cs,
            );
        }
        let after = pool::stats();
        (after.fresh_allocs - before.fresh_allocs) as f64 / probe_batches as f64
    })
}

/// The sweep (module docs): every arm × width × offered load × policy,
/// one [`run_load`] experiment per row. The full artefact uses
/// `m = 10⁵`, `widths = SWEEP_WIDTHS`, two offered loads and two
/// policies; the smoke entry point trims everything so CI finishes in
/// seconds.
#[must_use]
pub fn run_measurements(
    m: usize,
    widths: &[usize],
    offered: &[f64],
    policies: &[BatchPolicy],
    caches: &[CacheMode],
    warmup: Duration,
    duration: Duration,
) -> Vec<LoadMeasurement> {
    let index = crate::serve::build_index(N_USERS, m, DIM, 0x10AD ^ m as u64);
    let nlist = (m / 400).clamp(16, 256);
    let ivf = IvfIndex::build(
        &index,
        &IvfParams {
            nlist,
            iters: 5,
            seed: 0x10AD ^ nlist as u64,
            train_cap: 1 << 16,
        },
    );
    let qidx = index.quantize(PanelDtype::ScaledI8);
    let engine = TopKEngine::new();
    let arms = [
        EngineArm::Exact { index: &index },
        EngineArm::Sharded {
            index: &index,
            n_shards: 8,
        },
        EngineArm::Ivf {
            index: &index,
            ivf: &ivf,
            nprobe: 8,
        },
        EngineArm::Quant { index: &qidx },
    ];

    let mut out = Vec::new();
    for arm in &arms {
        for &cache in caches {
            let allocs_per_batch = alloc_probe(&engine, arm, cache);
            for &w in widths {
                for &offered_qps in offered {
                    for policy in policies {
                        let cfg = LoadConfig {
                            n_generators: 2,
                            n_workers: 2,
                            queue_capacity: 256,
                            admission: AdmissionPolicy::Shed,
                            policy: *policy,
                            zipf_exponent: 1.1,
                            offered_qps,
                            warmup,
                            duration,
                            k: K,
                            intra_width: w,
                            seed: 0x5EED ^ m as u64,
                            cache,
                        };
                        let report = run_load(&cfg, &engine, arm, None);
                        out.push(LoadMeasurement {
                            arm: arm.label(),
                            m,
                            k: K,
                            threads: w,
                            policy: policy.label(),
                            admission: cfg.admission.label(),
                            cache: cache.label(),
                            cache_capacity: cache.capacity(),
                            offered_qps,
                            completed: report.completed,
                            measured: report.measured,
                            qps: report.qps(),
                            shed_rate: report.shed_rate(),
                            mean_batch: report.mean_batch(),
                            hit_rate: report.hit_rate(),
                            stale_evictions: report.cache.stale_evictions,
                            p50_wait_ms: report.queue_wait.quantile_ms(0.5),
                            p99_wait_ms: report.queue_wait.quantile_ms(0.99),
                            p50_service_ms: report.service.quantile_ms(0.5),
                            p99_service_ms: report.service.quantile_ms(0.99),
                            p50_total_ms: report.total.quantile_ms(0.5),
                            p99_total_ms: report.total.quantile_ms(0.99),
                            allocs_per_batch,
                        });
                    }
                }
            }
        }
    }
    out
}

/// Renders the report as JSON (schema `dt-bench/load/v2`).
#[must_use]
pub fn render_report(results: &[LoadMeasurement]) -> String {
    let host = crate::report::host_threads();
    let mut s = crate::report::bench_header(
        "dt-bench/load/v2",
        "serving under replayed heavy traffic: the dt-load harness drives \
         each engine arm (exact, item-sharded exact, IVF nprobe-8, \
         scaled-i8 quantized scan) with Zipf(1.1) users offered as a \
         Poisson process by 2 generator threads into a 256-deep bounded \
         admission queue under the shed policy, dispatched by 2 worker \
         threads per the row's max-batch/max-delay policy (label bXdYus). \
         threads is the intra-query width forced per dispatch via \
         dt_parallel::with_thread_limit; host_threads records the \
         hardware actually available, so latencies on an oversubscribed \
         host are self-describing. qps counts queries enqueued inside \
         the measurement window (after warm-up) and served; shed_rate is \
         shed / offered over the whole run; mean_batch is queries per \
         dispatched batch inside the window. Wait / service / total \
         quantiles come from the log-scale dt_metrics latency histogram \
         (8 sub-buckets per octave: reported bounds are within 12.5% of \
         the true sample quantile). allocs_per_batch is the post-warm-up \
         dt_tensor::pool::stats fresh-alloc delta per dispatched batch — \
         the steady-state serving loop allocates nothing on every arm, \
         cached or not. cache is the dt-cache result cache in front of \
         dispatch (off, per-worker CLOCK store, or shared sharded store; \
         cache_capacity is stripes per worker resp. total); cached rows \
         report the whole-run hit_rate (cold warm-up misses included) \
         and stale_evictions (epoch-lagging entries lazily evicted on \
         probe — zero here, no epoch bump happens mid-run). Cache hits \
         replay stored stripes verbatim, bitwise identical to fresh \
         dispatch, and their service latency is the probe phase alone. \
         The offered traffic is deterministic (seeded per-thread \
         SplitMix64 streams); the latencies are whatever the host \
         delivers.",
        None,
    );
    s.push_str("  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        let sep = if i + 1 == results.len() { "" } else { "," };
        let _ = writeln!(
            s,
            "    {{\"arm\": \"{}\", \"m\": {}, \"k\": {}, \"threads\": {}, \
             \"host_threads\": {host}, \"policy\": \"{}\", \
             \"admission\": \"{}\", \"cache\": \"{}\", \
             \"cache_capacity\": {}, \"offered_qps\": {:.0}, \
             \"completed\": {}, \"measured\": {}, \"qps\": {:.1}, \
             \"shed_rate\": {:.4}, \"mean_batch\": {:.2}, \
             \"hit_rate\": {:.4}, \"stale_evictions\": {}, \
             \"p50_wait_ms\": {:.3}, \"p99_wait_ms\": {:.3}, \
             \"p50_service_ms\": {:.3}, \"p99_service_ms\": {:.3}, \
             \"p50_total_ms\": {:.3}, \"p99_total_ms\": {:.3}, \
             \"allocs_per_batch\": {:.1}}}{sep}",
            r.arm,
            r.m,
            r.k,
            r.threads,
            r.policy,
            r.admission,
            r.cache,
            r.cache_capacity,
            r.offered_qps,
            r.completed,
            r.measured,
            r.qps,
            r.shed_rate,
            r.mean_batch,
            r.hit_rate,
            r.stale_evictions,
            r.p50_wait_ms,
            r.p99_wait_ms,
            r.p50_service_ms,
            r.p99_service_ms,
            r.p50_total_ms,
            r.p99_total_ms,
            r.allocs_per_batch,
        );
    }
    s.push_str("  ]\n}\n");
    s
}

fn eprint_rows(results: &[LoadMeasurement]) {
    for r in results {
        eprintln!(
            "load {:7} t={} {:9} cache {:10} offered {:6.0}/s  qps {:7.1}  \
             shed {:.3}  batch {:5.2}  hit {:.3}  p50/p99 total \
             {:7.3}/{:8.3} ms  allocs/batch {:.1}",
            r.arm,
            r.threads,
            r.policy,
            r.cache,
            r.offered_qps,
            r.qps,
            r.shed_rate,
            r.mean_batch,
            r.hit_rate,
            r.p50_total_ms,
            r.p99_total_ms,
            r.allocs_per_batch,
        );
    }
}

/// The two batching policies of the full sweep: latency-optimal
/// single-query dispatch vs a coalescing max-batch-64 / max-delay-2 ms
/// policy.
#[must_use]
pub fn full_policies() -> [BatchPolicy; 2] {
    [
        BatchPolicy::single(),
        BatchPolicy {
            max_batch: 64,
            max_delay: Duration::from_millis(2),
        },
    ]
}

/// The three cache modes of the full sweep: the PR 9 uncached baseline,
/// a 1024-stripe per-worker CLOCK store, and a 1024-stripe shared store
/// over 8 mutex shards. 1024 stripes cover half the 2048-user pool —
/// far more than the Zipf(1.1) head needs, so steady-state hit rates
/// are popularity-limited, not capacity-limited.
#[must_use]
pub fn full_caches() -> [CacheMode; 3] {
    [
        CacheMode::Off,
        CacheMode::PerWorker { capacity: 1024 },
        CacheMode::Shared {
            capacity: 1024,
            shards: 8,
        },
    ]
}

/// Runs the full sweep — `M = 10⁵`, widths `SWEEP_WIDTHS`, an underload
/// and an overload point, both policies, all three cache modes — and
/// writes `BENCH_load.json` to `path`. Takes several minutes of wall
/// time by construction (each row is a timed experiment).
///
/// # Errors
/// Propagates the underlying file-write error.
pub fn write_load_report(path: &Path) -> std::io::Result<()> {
    let results = run_measurements(
        100_000,
        &crate::serve::SWEEP_WIDTHS,
        &[400.0, 4_000.0],
        &full_policies(),
        &full_caches(),
        // The warm-up must be long enough for the caches to fill at the
        // *served* rate (an overloaded uncached arm completes only a few
        // hundred queries/s), or cached rows measure the ramp, not the
        // steady state.
        Duration::from_millis(750),
        Duration::from_millis(2_000),
    );
    std::fs::write(path, render_report(&results))?;
    eprint_rows(&results);
    Ok(())
}

/// Runs a trimmed sweep — tiny catalog, ambient width, short windows —
/// and writes the report to `path`. The CI smoke entry point: it
/// exercises every arm, both policies and both load points end to end
/// (generators, queue, batcher, workers, histograms) in a few seconds
/// without touching the committed full artefact.
///
/// # Errors
/// Propagates the underlying file-write error.
pub fn write_load_smoke_report(path: &Path) -> std::io::Result<()> {
    let results = run_measurements(
        4_000,
        &[dt_parallel::num_threads()],
        &[300.0, 3_000.0],
        &[
            BatchPolicy::single(),
            BatchPolicy {
                max_batch: 16,
                max_delay: Duration::from_millis(1),
            },
        ],
        &[
            CacheMode::Off,
            CacheMode::Shared {
                capacity: 256,
                shards: 4,
            },
        ],
        Duration::from_millis(40),
        Duration::from_millis(160),
    );
    std::fs::write(path, render_report(&results))?;
    eprint_rows(&results);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_sweep_reports_sane_rows_and_zero_allocs() {
        let rows = run_measurements(
            2_000,
            &[1],
            &[1_000.0],
            &[BatchPolicy {
                max_batch: 8,
                max_delay: Duration::from_millis(1),
            }],
            &[
                CacheMode::Off,
                CacheMode::Shared {
                    capacity: 256,
                    shards: 2,
                },
            ],
            Duration::from_millis(30),
            Duration::from_millis(120),
        );
        assert_eq!(rows.len(), 8); // arm x cache
        for r in &rows {
            assert!(r.completed > 0, "{}/{}: no traffic served", r.arm, r.cache);
            assert!(r.qps >= 0.0);
            assert!(r.shed_rate >= 0.0 && r.shed_rate <= 1.0);
            assert!(
                r.allocs_per_batch == 0.0,
                "{}/{}: steady-state dispatch allocated ({} per batch)",
                r.arm,
                r.cache,
                r.allocs_per_batch
            );
            assert!(r.p99_total_ms >= r.p50_total_ms);
            match r.cache {
                "off" => {
                    assert_eq!(r.cache_capacity, 0);
                    assert_eq!(r.hit_rate, 0.0, "{}: uncached row probed", r.arm);
                }
                _ => {
                    assert_eq!(r.cache_capacity, 256);
                    assert!(
                        r.hit_rate > 0.0,
                        "{}: cached row never hit under Zipf head traffic",
                        r.arm
                    );
                    assert_eq!(r.stale_evictions, 0, "no epoch bump happens mid-run");
                }
            }
        }
        let labels: Vec<&str> = rows.iter().map(|r| r.arm).collect();
        assert_eq!(
            labels,
            vec!["exact", "exact", "sharded", "sharded", "ivf", "ivf", "quant", "quant"]
        );
    }

    #[test]
    fn report_shape_is_valid() {
        let m = LoadMeasurement {
            arm: "exact",
            m: 100_000,
            k: 10,
            threads: 8,
            policy: "b64d2000us".to_owned(),
            admission: "shed",
            cache: "shared",
            cache_capacity: 1024,
            offered_qps: 4_000.0,
            completed: 12_345,
            measured: 10_000,
            qps: 2_500.5,
            shed_rate: 0.375,
            mean_batch: 12.25,
            hit_rate: 0.8125,
            stale_evictions: 0,
            p50_wait_ms: 0.5,
            p99_wait_ms: 4.25,
            p50_service_ms: 1.5,
            p99_service_ms: 3.0,
            p50_total_ms: 2.0,
            p99_total_ms: 7.5,
            allocs_per_batch: 0.0,
        };
        let json = render_report(&[m]);
        assert!(json.contains("\"schema\": \"dt-bench/load/v2\""));
        assert!(json.contains("\"arm\": \"exact\""));
        assert!(json.contains("\"policy\": \"b64d2000us\""));
        assert!(json.contains("\"admission\": \"shed\""));
        assert!(json.contains("\"cache\": \"shared\""));
        assert!(json.contains("\"cache_capacity\": 1024"));
        assert!(json.contains("\"offered_qps\": 4000"));
        assert!(json.contains("\"qps\": 2500.5"));
        assert!(json.contains("\"shed_rate\": 0.3750"));
        assert!(json.contains("\"mean_batch\": 12.25"));
        assert!(json.contains("\"hit_rate\": 0.8125"));
        assert!(json.contains("\"stale_evictions\": 0"));
        assert!(json.contains("\"allocs_per_batch\": 0.0"));
        assert!(json.contains("\"git_rev\": \""));
        assert!(json.trim_end().ends_with('}'));
    }
}
