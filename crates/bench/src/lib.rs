//! # dt-bench
//!
//! Criterion benchmarks for the `disrec` workspace. The library itself is
//! empty — everything lives in `benches/`:
//!
//! * `kernels` / `autograd` — substrate microbenchmarks (gemm, Gram trick,
//!   tape build + backward);
//! * `table1_bias_grid` — the Table I bias computation;
//! * `table3_semisynthetic` — the semi-synthetic pipeline + one training
//!   epoch per method;
//! * `table4_realworld` — per-method fit time on a COAT-scale dataset;
//! * `table5_ablation` — DT fit time with each loss toggled;
//! * `table6_timing` — the paper's efficiency study (training + inference
//!   latency per method);
//! * `figure5_sparsity` — fit time as the training log is subsampled.
//!
//! Run with `cargo bench --workspace`.
