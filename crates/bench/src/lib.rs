//! # dt-bench
//!
//! Criterion benchmarks for the `disrec` workspace plus the std-only kernel
//! throughput report behind `BENCH_kernels.json` (see [`report`]). The
//! benches live in `benches/`:
//!
//! * `kernels` / `autograd` — substrate microbenchmarks (blocked gemm at the
//!   paper's tall-skinny shapes vs the naive reference loops, Gram trick,
//!   tape build + backward); the `kernels` run also regenerates
//!   `BENCH_kernels.json` at the repo root;
//! * `table1_bias_grid` — the Table I bias computation;
//! * `table3_semisynthetic` — the semi-synthetic pipeline + one training
//!   epoch per method;
//! * `table4_realworld` — per-method fit time on a COAT-scale dataset;
//! * `table5_ablation` — DT fit time with each loss toggled;
//! * `table6_timing` — the paper's efficiency study (training + inference
//!   latency per method);
//! * `figure5_sparsity` — fit time as the training log is subsampled.
//! * `train_step` — one DT-IPS-shaped training step with dense vs
//!   row-sparse gradients; the run also regenerates `BENCH_train_step.json`
//!   at the repo root (see [`train_step`]).
//! * `serve` — batched full-catalog top-K retrieval: full-sort vs
//!   partial-selection at `M ∈ {10⁴, 10⁵, 10⁶}`; the run also regenerates
//!   `BENCH_serve.json` at the repo root (see [`serve`]), sweeping
//!   `DT_NUM_THREADS ∈ {1, 2, 8}` in-process.
//! * `ann` — IVF coarse-quantized retrieval vs exact: recall@K and the
//!   latency/recall frontier over `nlist` × `nprobe` × `M` × `K`; the run
//!   also regenerates `BENCH_ann.json` at the repo root (see [`ann`]).
//! * `quant` — mixed-precision scoring panels: the exact f64 engine vs
//!   `QuantizedIndex` exports at dtype f64 / f32 / scaled-i8; the run
//!   also regenerates `BENCH_quant.json` at the repo root (see
//!   [`quant`]), the accuracy-vs-bandwidth frontier.
//! * `load` (`gen_load` bin only, no criterion bench) — the serving
//!   stack under replayed heavy traffic via the `dt-load` harness:
//!   engine arm × intra-query width × offered load × batching policy,
//!   regenerating `BENCH_load.json` at the repo root (see [`load`]).
//!
//! Run with `cargo bench --workspace`. Kernel benches respect
//! `DT_NUM_THREADS` (set it to 1 for a sequential baseline).

#![forbid(unsafe_code)]

pub mod ann;
pub mod load;
pub mod quant;
pub mod report;
pub mod serve;
pub mod train_step;
