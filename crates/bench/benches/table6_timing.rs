//! Table VI as a benchmark: the paper's efficiency study — training cost
//! and per-sample inference latency for the nine methods it compares.
//! (`repro table6` prints the same quantities as a table.)

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dt_core::{registry, Method, TrainConfig};
use dt_data::{coat_like, RealWorldConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

const METHODS: [Method; 9] = [
    Method::Esmm,
    Method::Ips,
    Method::MultiIps,
    Method::Escm2Ips,
    Method::DtIps,
    Method::DrJl,
    Method::MultiDr,
    Method::Escm2Dr,
    Method::DtDr,
];

fn training(c: &mut Criterion) {
    let ds = coat_like(&RealWorldConfig::default());
    let cfg = TrainConfig {
        epochs: 1,
        batch_size: 512,
        emb_dim: 16,
        ..TrainConfig::default()
    };
    let mut group = c.benchmark_group("table6 train 1 epoch on coat-like");
    group.sample_size(10);
    for method in METHODS {
        group.bench_with_input(
            BenchmarkId::from_parameter(method.label()),
            &method,
            |bench, &method| {
                bench.iter(|| {
                    let mut model = registry::build(method, &ds, &cfg, 0);
                    let mut rng = StdRng::seed_from_u64(0);
                    black_box(model.fit(&ds, &mut rng).final_loss)
                });
            },
        );
    }
    group.finish();
}

fn inference(c: &mut Criterion) {
    let ds = coat_like(&RealWorldConfig::default());
    let cfg = TrainConfig {
        epochs: 1,
        batch_size: 512,
        emb_dim: 16,
        ..TrainConfig::default()
    };
    let pairs: Vec<(usize, usize)> = (0..4096)
        .map(|k| (k % ds.n_users, (k * 31) % ds.n_items))
        .collect();
    let mut group = c.benchmark_group("table6 inference 4096 pairs");
    group.throughput(Throughput::Elements(4096));
    group.sample_size(20);
    for method in METHODS {
        let mut model = registry::build(method, &ds, &cfg, 0);
        let mut rng = StdRng::seed_from_u64(0);
        model.fit(&ds, &mut rng);
        group.bench_with_input(
            BenchmarkId::from_parameter(method.label()),
            &method,
            |bench, _| {
                bench.iter(|| black_box(model.predict(&pairs)));
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = training, inference
}
criterion_main!(benches);
