//! IVF probe-and-rerank vs exact full-catalog retrieval.
//!
//! The criterion run covers the `M = 10⁵` scale interactively; `main`
//! then regenerates `BENCH_ann.json` at the repo root via
//! [`dt_bench::ann`], which sweeps `nlist ∈ {64, 256, 1024}` ×
//! `nprobe ∈ {1, 4, 16, 64}` × `M ∈ {10⁴, 10⁵, 10⁶}` × `K ∈ {10, 50}`
//! at pool widths 1/2/8.

use criterion::{criterion_group, Criterion};
use dt_bench::ann::build_clustered_index;
use dt_serve::{IvfIndex, IvfParams, IvfScratch, TopKBatch, TopKEngine};

fn bench_ann(c: &mut Criterion) {
    let (n_users, m, dim, k) = (2048, 100_000, 32, 10);
    let index = build_clustered_index(n_users, m, dim, 512, 0.25, 0x0A17);
    let users: Vec<usize> = (0..16).map(|j| (j * 131) % n_users).collect();
    let engine = TopKEngine::new();
    let ivf = IvfIndex::build(
        &index,
        &IvfParams {
            nlist: 256,
            iters: 6,
            seed: 0x1AF5,
            train_cap: 1 << 17,
        },
    );
    let mut group = c.benchmark_group(format!("ann M={m} K={k} users={}", users.len()));
    group.sample_size(10);
    let mut batch = TopKBatch::new();
    group.bench_function("exact full-catalog", |bench| {
        bench.iter(|| engine.recommend_into(&index, &users, k, None, &mut batch));
    });
    let mut scratch = IvfScratch::default();
    for nprobe in [4usize, 16] {
        group.bench_function(format!("ivf nlist=256 nprobe={nprobe}"), |bench| {
            bench.iter(|| {
                engine.recommend_ivf_into(
                    &index,
                    &ivf,
                    nprobe,
                    &users,
                    k,
                    None,
                    &mut scratch,
                    &mut batch,
                );
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_ann
}

fn main() {
    benches();
    Criterion::default().configure_from_args().final_summary();

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_ann.json");
    eprintln!("\nwriting ann report to {path}");
    if let Err(e) = dt_bench::ann::write_ann_report(std::path::Path::new(path)) {
        eprintln!("failed to write {path}: {e}");
    }
}
