//! Table I as a benchmark: generating one mechanism dataset and measuring
//! the exact IPS bias grid.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dt_data::{mechanism_dataset, Mechanism, MechanismConfig};
use dt_estimators::BiasGrid;

fn bias_grid(c: &mut Criterion) {
    let cfg = MechanismConfig {
        n_users: 100,
        n_items: 150,
        seed: 5,
        ..MechanismConfig::default()
    };
    for mech in [Mechanism::Mcar, Mechanism::Mar, Mechanism::Mnar] {
        let ds = mechanism_dataset(mech, &cfg);
        let predictions = ds.truth.as_ref().unwrap().preference.map(|p| 0.8 * p + 0.1);
        c.bench_function(&format!("table1 bias grid {}", mech.label()), |bench| {
            bench.iter(|| black_box(BiasGrid::compute(&ds, &predictions)));
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bias_grid
}
criterion_main!(benches);
