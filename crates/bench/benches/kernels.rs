//! Substrate microbenchmarks: the tensor kernels every training step rides
//! on, including the Gram-trick evaluation of `‖P·Qᵀ‖²_F` that makes the
//! DT regularisation loss tractable at catalogue scale.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dt_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_matmul(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let a = dt_tensor::normal(256, 64, 0.0, 1.0, &mut rng);
    let b = dt_tensor::normal(64, 256, 0.0, 1.0, &mut rng);
    c.bench_function("matmul 256x64x256", |bench| {
        bench.iter(|| black_box(a.matmul(&b)));
    });

    let tall = dt_tensor::normal(2048, 32, 0.0, 1.0, &mut rng);
    c.bench_function("gram 2048x32", |bench| {
        bench.iter(|| black_box(tall.gram()));
    });
}

fn bench_gram_trick_vs_direct(c: &mut Criterion) {
    // ‖P·Qᵀ‖²_F two ways: the naive m×n product vs trace((PᵀP)(QᵀQ)).
    let mut rng = StdRng::seed_from_u64(2);
    let p = dt_tensor::normal(800, 16, 0.0, 0.1, &mut rng);
    let q = dt_tensor::normal(1200, 16, 0.0, 0.1, &mut rng);
    let mut group = c.benchmark_group("frobenius of PQ^T (800x1200, k=16)");
    group.bench_function("direct m*n product", |bench| {
        bench.iter(|| black_box(p.matmul_nt(&q).frob_sq()));
    });
    group.bench_function("gram trick", |bench| {
        bench.iter(|| black_box(p.gram().trace_product(&q.gram())));
    });
    group.finish();
}

fn bench_gather_scatter(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let table = dt_tensor::normal(10_000, 32, 0.0, 0.1, &mut rng);
    let idx: Vec<usize> = (0..512).map(|k| (k * 7919) % 10_000).collect();
    c.bench_function("gather 512 of 10k x32", |bench| {
        bench.iter(|| black_box(table.gather_rows(&idx)));
    });
    let rows = table.gather_rows(&idx);
    c.bench_function("scatter-add 512 into 10k x32", |bench| {
        bench.iter(|| {
            let mut acc = Tensor::zeros(10_000, 32);
            acc.scatter_add_rows(&idx, &rows);
            black_box(acc)
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_matmul, bench_gram_trick_vs_direct, bench_gather_scatter
}
criterion_main!(benches);
