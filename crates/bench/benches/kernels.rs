//! Substrate microbenchmarks: the tensor kernels every training step rides
//! on, including the Gram-trick evaluation of `‖P·Qᵀ‖²_F` that makes the
//! DT regularisation loss tractable at catalogue scale.
//!
//! The GEMM benches pit the blocked/parallel kernels against the naive
//! reference loops at the paper's tall-skinny shapes (4096×k · k×4096,
//! k ∈ {8, 64, 256}). After the criterion run, `main` regenerates
//! `BENCH_kernels.json` at the repo root via [`dt_bench::report`].

use criterion::{black_box, criterion_group, Criterion};
use dt_tensor::{reference, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_tall_skinny_gemm(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    for k in [8usize, 64, 256] {
        let a = dt_tensor::normal(4096, k, 0.0, 1.0, &mut rng);
        let b = dt_tensor::normal(k, 4096, 0.0, 1.0, &mut rng);
        let mut group = c.benchmark_group(format!("matmul 4096x{k}x4096"));
        group.sample_size(10);
        group.bench_function("naive reference", |bench| {
            bench.iter(|| black_box(reference::matmul(&a, &b)));
        });
        group.bench_function("blocked sequential", |bench| {
            bench.iter(|| black_box(dt_parallel::run_sequential(|| a.matmul(&b))));
        });
        group.bench_function("blocked parallel", |bench| {
            bench.iter(|| black_box(a.matmul(&b)));
        });
        group.finish();
    }
}

fn bench_tall_skinny_tn(c: &mut Criterion) {
    // The Gram-style reduction Aᵀ·B over 4096 interaction rows: the single
    // hottest kernel of the DT loss (called once per batch per epoch).
    let mut rng = StdRng::seed_from_u64(2);
    for k in [8usize, 64, 256] {
        let a = dt_tensor::normal(4096, k, 0.0, 1.0, &mut rng);
        let b = dt_tensor::normal(4096, k, 0.0, 1.0, &mut rng);
        let mut group = c.benchmark_group(format!("matmul_tn 4096-tall k={k}"));
        group.sample_size(10);
        group.bench_function("naive reference", |bench| {
            bench.iter(|| black_box(reference::matmul_tn(&a, &b)));
        });
        group.bench_function("blocked sequential", |bench| {
            bench.iter(|| black_box(dt_parallel::run_sequential(|| a.matmul_tn(&b))));
        });
        group.bench_function("blocked parallel", |bench| {
            bench.iter(|| black_box(a.matmul_tn(&b)));
        });
        group.finish();
    }
}

fn bench_gram_trick_vs_direct(c: &mut Criterion) {
    // ‖P·Qᵀ‖²_F two ways: the naive m×n product vs trace((PᵀP)(QᵀQ)).
    let mut rng = StdRng::seed_from_u64(3);
    let p = dt_tensor::normal(800, 16, 0.0, 0.1, &mut rng);
    let q = dt_tensor::normal(1200, 16, 0.0, 0.1, &mut rng);
    let mut group = c.benchmark_group("frobenius of PQ^T (800x1200, k=16)");
    group.bench_function("direct m*n product", |bench| {
        bench.iter(|| black_box(p.matmul_nt(&q).frob_sq()));
    });
    group.bench_function("gram trick", |bench| {
        bench.iter(|| black_box(p.gram().trace_product(&q.gram())));
    });
    group.finish();
}

fn bench_gather_scatter(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(4);
    let table = dt_tensor::normal(10_000, 32, 0.0, 0.1, &mut rng);
    let idx: Vec<usize> = (0..512).map(|k| (k * 7919) % 10_000).collect();
    c.bench_function("gather 512 of 10k x32", |bench| {
        bench.iter(|| black_box(table.gather_rows(&idx)));
    });
    let rows = table.gather_rows(&idx);
    c.bench_function("scatter-add 512 into 10k x32", |bench| {
        bench.iter(|| {
            let mut acc = Tensor::zeros(10_000, 32);
            acc.scatter_add_rows(&idx, &rows);
            black_box(acc)
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_tall_skinny_gemm, bench_tall_skinny_tn,
              bench_gram_trick_vs_direct, bench_gather_scatter
}

fn main() {
    benches();
    Criterion::default().configure_from_args().final_summary();

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_kernels.json");
    eprintln!("\nwriting kernel throughput report to {path}");
    if let Err(e) = dt_bench::report::write_kernel_report(std::path::Path::new(path)) {
        eprintln!("failed to write {path}: {e}");
    }
}
