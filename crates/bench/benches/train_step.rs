//! One DT-IPS-shaped training step: dense vs row-sparse vs pooled+fused.
//!
//! The criterion run covers the `M = 10⁵` scale interactively; `main` then
//! regenerates `BENCH_train_step.json` at the repo root via
//! [`dt_bench::train_step`], which sweeps `M ∈ {10⁴, 10⁵, 10⁶}`.

use criterion::{criterion_group, Criterion};
use dt_bench::train_step::{StepMode, TrainBench};

fn bench_train_step(c: &mut Criterion) {
    let (m, k, b) = (100_000, 64, 128);
    let mut group = c.benchmark_group(format!("DT-IPS step M={m} K={k} B={b}"));
    group.sample_size(10);
    let mut dense = TrainBench::new(m, k, b, StepMode::Dense);
    group.bench_function("dense gradients (legacy path)", |bench| {
        bench.iter(|| dense.step());
    });
    let mut sparse = TrainBench::new(m, k, b, StepMode::Sparse);
    group.bench_function("row-sparse gradients (lazy adam)", |bench| {
        bench.iter(|| sparse.step());
    });
    let mut pooled = TrainBench::new(m, k, b, StepMode::Pooled);
    group.bench_function("row-sparse + buffer pool + fused bce", |bench| {
        bench.iter(|| pooled.step());
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_train_step
}

fn main() {
    benches();
    Criterion::default().configure_from_args().final_summary();

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_train_step.json");
    eprintln!("\nwriting train-step report to {path}");
    if let Err(e) = dt_bench::train_step::write_train_step_report(std::path::Path::new(path)) {
        eprintln!("failed to write {path}: {e}");
    }
}
