//! Mixed-precision scoring panels: f64 exact vs quantized dtype arms.
//!
//! The criterion run covers the `M = 10⁵` scale interactively; `main`
//! then regenerates `BENCH_quant.json` at the repo root via
//! [`dt_bench::quant`], which sweeps dtype × `M ∈ {10⁴, 10⁵, 10⁶}` ×
//! `K ∈ {10, 50}` at pool widths 1/2/8.

use criterion::{criterion_group, Criterion};
use dt_bench::ann::build_clustered_index;
use dt_bench::quant::DTYPES;
use dt_serve::{QuantScratch, TopKBatch, TopKEngine};

fn bench_quant(c: &mut Criterion) {
    let (n_users, m, dim, k) = (2048, 100_000, 32, 10);
    let index = build_clustered_index(n_users, m, dim, 512, 0.25, 0x0A17);
    let users: Vec<usize> = (0..16).map(|j| (j * 131) % n_users).collect();
    let engine = TopKEngine::new();
    let mut group = c.benchmark_group(format!("quant M={m} K={k} users={}", users.len()));
    group.sample_size(10);
    let mut batch = TopKBatch::new();
    group.bench_function("exact f64 full-catalog", |bench| {
        bench.iter(|| engine.recommend_into(&index, &users, k, None, &mut batch));
    });
    for dtype in DTYPES {
        let qidx = index.quantize(dtype);
        let mut scratch = QuantScratch::default();
        group.bench_function(format!("quantized dtype={}", dtype.label()), |bench| {
            bench.iter(|| {
                engine.recommend_quantized_into(
                    &qidx,
                    &users,
                    k,
                    None,
                    None,
                    &mut scratch,
                    &mut batch,
                );
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_quant
}

fn main() {
    benches();
    Criterion::default().configure_from_args().final_summary();

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_quant.json");
    eprintln!("\nwriting quant report to {path}");
    if let Err(e) = dt_bench::quant::write_quant_report(std::path::Path::new(path)) {
        eprintln!("failed to write {path}: {e}");
    }
}
