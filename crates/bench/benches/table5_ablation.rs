//! Table V as a benchmark: what each DT loss term costs per fit — the
//! disentangling loss is cheap (k×k Gram products), the regularisation
//! loss rides the Gram trick.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dt_core::methods::{DtRecommender, DtVariant};
use dt_core::{Recommender, TrainConfig};
use dt_data::{coat_like, RealWorldConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn ablation(c: &mut Criterion) {
    let ds = coat_like(&RealWorldConfig::default());
    let cfg = TrainConfig {
        epochs: 2,
        batch_size: 512,
        emb_dim: 16,
        ..TrainConfig::default()
    };
    let mut group = c.benchmark_group("table5 DT-IPS fit by loss config (2 epochs)");
    group.sample_size(10);
    for (label, beta_on, gamma_on) in [
        ("no-beta no-gamma", false, false),
        ("beta only", true, false),
        ("gamma only", false, true),
        ("beta+gamma", true, true),
    ] {
        group.bench_function(label, |bench| {
            bench.iter(|| {
                let mut model = DtRecommender::new(&ds, &cfg, DtVariant::Ips, 0);
                if !beta_on {
                    model = model.without_disentangle();
                }
                if !gamma_on {
                    model = model.without_regularization();
                }
                let mut rng = StdRng::seed_from_u64(0);
                black_box(model.fit(&ds, &mut rng).final_loss)
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = ablation
}
criterion_main!(benches);
