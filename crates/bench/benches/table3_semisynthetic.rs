//! Table III as a benchmark: the semi-synthetic generation pipeline and
//! one full training run per Table III method on a reduced instance.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use dt_core::{registry, Method, TrainConfig};
use dt_data::{semi_synthetic, SemiSyntheticConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn dataset() -> dt_data::Dataset {
    semi_synthetic(&SemiSyntheticConfig {
        n_users: 100,
        n_items: 160,
        n_ratings: 1_500,
        mf_epochs: 8,
        rho: 1.0,
        epsilon: 0.3,
        seed: 0,
        ..SemiSyntheticConfig::default()
    })
}

fn pipeline(c: &mut Criterion) {
    c.bench_function("semi-synthetic pipeline 100x160", |bench| {
        bench.iter(|| black_box(dataset()));
    });
}

fn training(c: &mut Criterion) {
    let ds = dataset();
    let cfg = TrainConfig {
        epochs: 3,
        batch_size: 256,
        emb_dim: 8,
        l2: 1e-4,
        ..TrainConfig::default()
    };
    let mut group = c.benchmark_group("table3 fit (3 epochs)");
    group.sample_size(10);
    for method in Method::TABLE3 {
        group.bench_with_input(
            BenchmarkId::from_parameter(method.label()),
            &method,
            |bench, &method| {
                bench.iter(|| {
                    let mut model = registry::build(method, &ds, &cfg, 0);
                    let mut rng = StdRng::seed_from_u64(0);
                    black_box(model.fit(&ds, &mut rng).final_loss)
                });
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = pipeline, training
}
criterion_main!(benches);
