//! Tape build + backward cost for a realistic MF training step.

use std::rc::Rc;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dt_autograd::{Graph, Params};
use dt_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn mf_step(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(4);
    let mut params = Params::new();
    let p = params.add("P", dt_tensor::normal(2000, 16, 0.0, 0.1, &mut rng));
    let q = params.add("Q", dt_tensor::normal(3000, 16, 0.0, 0.1, &mut rng));
    let users = Rc::new((0..512usize).map(|k| (k * 13) % 2000).collect::<Vec<_>>());
    let items = Rc::new((0..512usize).map(|k| (k * 7) % 3000).collect::<Vec<_>>());
    let labels = Tensor::col_vec(&(0..512).map(|k| f64::from(k % 2 == 0)).collect::<Vec<_>>());

    c.bench_function("mf forward+backward batch 512", |bench| {
        bench.iter(|| {
            let mut g = Graph::new();
            let pv = g.param(&params, p);
            let qv = g.param(&params, q);
            let pu = g.gather(pv, Rc::clone(&users));
            let qi = g.gather(qv, Rc::clone(&items));
            let logits = g.row_dot(pu, qi);
            let y = g.constant(labels.clone());
            let loss = g.bce_mean(logits, y);
            g.backward(loss, &mut params);
            params.zero_grad();
            black_box(g.len())
        });
    });

    c.bench_function(
        "dt losses (disentangle + gram reg) 2000/3000 x16",
        |bench| {
            bench.iter(|| {
                let mut g = Graph::new();
                let pv = g.param(&params, p);
                let qv = g.param(&params, q);
                let p_prim = g.slice_cols(pv, 0, 12);
                let p_aux = g.slice_cols(pv, 12, 16);
                let q_prim = g.slice_cols(qv, 0, 12);
                let q_aux = g.slice_cols(qv, 12, 16);
                let d1 = g.disentangle_penalty(p_prim, p_aux);
                let d2 = g.disentangle_penalty(q_prim, q_aux);
                let r1 = g.cross_gram_penalty(p_prim, q_prim);
                let r2 = g.cross_gram_penalty(p_aux, q_aux);
                let s1 = g.add(d1, d2);
                let s2 = g.add(r1, r2);
                let loss = g.add(s1, s2);
                g.backward(loss, &mut params);
                params.zero_grad();
                black_box(g.len())
            });
        },
    );
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = mf_step
}
criterion_main!(benches);
