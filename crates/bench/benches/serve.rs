//! Batched full-catalog top-K retrieval: full-sort vs partial selection.
//!
//! The criterion run covers the `M = 10⁵` scale interactively; `main` then
//! regenerates `BENCH_serve.json` at the repo root via [`dt_bench::serve`],
//! which sweeps `M ∈ {10⁴, 10⁵, 10⁶}` × `K ∈ {10, 50}`.

use criterion::{criterion_group, Criterion};
use dt_bench::serve::{build_index, full_sort_batch};
use dt_serve::{TopKBatch, TopKEngine};

fn bench_serve(c: &mut Criterion) {
    let (n_users, m, dim, k) = (2048, 100_000, 32, 10);
    let index = build_index(n_users, m, dim, 0x5EED);
    let users: Vec<usize> = (0..16).map(|j| (j * 131) % n_users).collect();
    let engine = TopKEngine::new();
    let block = engine.block_users(m);
    let mut group = c.benchmark_group(format!("serve M={m} K={k} users={}", users.len()));
    group.sample_size(10);
    let mut scratch = Vec::new();
    let mut sorted = TopKBatch::new();
    group.bench_function("full sort per user (seed selection)", |bench| {
        bench.iter(|| full_sort_batch(&index, &users, k, block, &mut scratch, &mut sorted));
    });
    let mut batch = TopKBatch::new();
    group.bench_function("bounded-heap partial selection", |bench| {
        bench.iter(|| engine.recommend_into(&index, &users, k, None, &mut batch));
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_serve
}

fn main() {
    benches();
    Criterion::default().configure_from_args().final_summary();

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    eprintln!("\nwriting serve report to {path}");
    if let Err(e) = dt_bench::serve::write_serve_report(std::path::Path::new(path)) {
        eprintln!("failed to write {path}: {e}");
    }
}
