//! Figure 5 as a benchmark: training cost as the training log is
//! subsampled — the runtime panel of the paper's sparsity study.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use dt_core::{registry, Method, TrainConfig};
use dt_data::{coat_like, sparsify, RealWorldConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn sparsity(c: &mut Criterion) {
    let full = coat_like(&RealWorldConfig::default());
    let cfg = TrainConfig {
        epochs: 2,
        batch_size: 512,
        emb_dim: 8,
        ..TrainConfig::default()
    };
    let mut group = c.benchmark_group("figure5 DT-IPS fit by kept fraction");
    group.sample_size(10);
    for keep in [1.0, 0.5, 0.25, 0.125] {
        let mut rng = StdRng::seed_from_u64(7);
        let ds = sparsify(&full, keep, &mut rng);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{:.0}%", keep * 100.0)),
            &ds,
            |bench, ds| {
                bench.iter(|| {
                    let mut model = registry::build(Method::DtIps, ds, &cfg, 0);
                    let mut rng = StdRng::seed_from_u64(0);
                    black_box(model.fit(ds, &mut rng).final_loss)
                });
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = sparsity
}
criterion_main!(benches);
