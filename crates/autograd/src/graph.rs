//! The tape: forward builders and the reverse sweep.

use std::rc::Rc;

use dt_tensor::{Grad, RowSparse, Tensor};

use crate::op::Op;
use crate::params::{ParamId, Params};

/// Handle to a node on the tape.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Var(usize);

impl Var {
    /// Padding for the unused slots of [`crate::op::Inputs`]; never a
    /// valid tape index.
    pub(crate) const PAD: Var = Var(usize::MAX);
}

struct Node {
    op: Op,
    value: Rc<Tensor>,
    requires_grad: bool,
}

/// A single-use computation tape.
///
/// Build the forward computation with the methods below (values are computed
/// eagerly), then call [`Graph::backward`] once on a scalar loss. Training
/// loops construct a fresh graph per mini-batch.
#[derive(Default)]
pub struct Graph {
    nodes: Vec<Node>,
}

impl Graph {
    /// An empty tape.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of nodes currently on the tape.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` when the tape is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The value of a variable.
    #[must_use]
    pub fn value(&self, v: Var) -> &Tensor {
        &self.nodes[v.0].value
    }

    /// The scalar value of a `1×1` variable.
    ///
    /// # Panics
    /// Panics if the variable is not scalar-shaped.
    #[must_use]
    pub fn item(&self, v: Var) -> f64 {
        self.value(v).item()
    }

    fn push(&mut self, op: Op, value: Tensor) -> Var {
        let requires_grad = match &op {
            Op::Leaf(param) => param.is_some(),
            Op::Constant => false,
            Op::Detach(_) => false,
            other => other.inputs().iter().any(|v| self.nodes[v.0].requires_grad),
        };
        self.nodes.push(Node {
            op,
            value: Rc::new(value),
            requires_grad,
        });
        Var(self.nodes.len() - 1)
    }

    // -- leaves ---------------------------------------------------------------

    /// Mounts a parameter from `params` as a differentiable leaf.
    pub fn param(&mut self, params: &Params, id: ParamId) -> Var {
        let value = params.value_rc(id);
        self.nodes.push(Node {
            op: Op::Leaf(Some(id)),
            value,
            requires_grad: true,
        });
        Var(self.nodes.len() - 1)
    }

    /// Mounts a non-trainable constant tensor.
    pub fn constant(&mut self, value: Tensor) -> Var {
        self.push(Op::Constant, value)
    }

    /// Mounts a `1×1` constant.
    pub fn scalar(&mut self, value: f64) -> Var {
        self.constant(Tensor::scalar(value))
    }

    /// Mounts a differentiable leaf that is not tied to a parameter store
    /// (useful for gradient checking). Its gradient is retrievable through
    /// [`Graph::backward_collect`].
    pub fn leaf(&mut self, value: Tensor) -> Var {
        self.nodes.push(Node {
            op: Op::Leaf(None),
            value: Rc::new(value),
            requires_grad: true,
        });
        Var(self.nodes.len() - 1)
    }

    // -- element-wise binary ----------------------------------------------------

    /// `a + b`.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).add(self.value(b));
        self.push(Op::Add(a, b), v)
    }

    /// `a - b`.
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).sub(self.value(b));
        self.push(Op::Sub(a, b), v)
    }

    /// `a ⊙ b`.
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).mul(self.value(b));
        self.push(Op::Mul(a, b), v)
    }

    /// `a / b` element-wise.
    pub fn div(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).div(self.value(b));
        self.push(Op::Div(a, b), v)
    }

    // -- element-wise unary -------------------------------------------------------

    /// `-a`.
    pub fn neg(&mut self, a: Var) -> Var {
        let v = self.value(a).neg();
        self.push(Op::Neg(a), v)
    }

    /// `a + c`.
    pub fn add_scalar(&mut self, a: Var, c: f64) -> Var {
        let v = self.value(a).add_scalar(c);
        self.push(Op::AddScalar(a, c), v)
    }

    /// `c · a`.
    pub fn mul_scalar(&mut self, a: Var, c: f64) -> Var {
        let v = self.value(a).scale(c);
        self.push(Op::MulScalar(a, c), v)
    }

    /// `a^p` element-wise.
    pub fn pow_const(&mut self, a: Var, p: f64) -> Var {
        let v = self.value(a).map(|x| x.powf(p));
        self.push(Op::PowConst(a, p), v)
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, a: Var) -> Var {
        let v = self.value(a).map(stable_sigmoid);
        self.push(Op::Sigmoid(a), v)
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, a: Var) -> Var {
        let v = self.value(a).map(f64::tanh);
        self.push(Op::Tanh(a), v)
    }

    /// ReLU.
    pub fn relu(&mut self, a: Var) -> Var {
        let v = self.value(a).map(|x| x.max(0.0));
        self.push(Op::Relu(a), v)
    }

    /// `exp(a)`.
    pub fn exp(&mut self, a: Var) -> Var {
        let v = self.value(a).map(f64::exp);
        self.push(Op::Exp(a), v)
    }

    /// `ln(a)`.
    pub fn ln(&mut self, a: Var) -> Var {
        let v = self.value(a).map(f64::ln);
        self.push(Op::Ln(a), v)
    }

    /// `√a`.
    pub fn sqrt(&mut self, a: Var) -> Var {
        let v = self.value(a).map(f64::sqrt);
        self.push(Op::Sqrt(a), v)
    }

    /// `a²`.
    pub fn sqr(&mut self, a: Var) -> Var {
        let v = self.value(a).map(|x| x * x);
        self.push(Op::Sqr(a), v)
    }

    /// `clamp(a, lo, hi)`.
    pub fn clamp(&mut self, a: Var, lo: f64, hi: f64) -> Var {
        let v = self.value(a).clamp(lo, hi);
        self.push(Op::Clamp(a, lo, hi), v)
    }

    // -- scalar-variable broadcast ---------------------------------------------------

    /// `a · s` for a `1×1` variable `s`.
    pub fn mul_scalar_var(&mut self, a: Var, s: Var) -> Var {
        let sv = self.item(s);
        let v = self.value(a).scale(sv);
        self.push(Op::MulScalarVar(a, s), v)
    }

    /// `a / s` for a `1×1` variable `s`.
    pub fn div_scalar_var(&mut self, a: Var, s: Var) -> Var {
        let sv = self.item(s);
        let v = self.value(a).scale(1.0 / sv);
        self.push(Op::DivScalarVar(a, s), v)
    }

    // -- matrix --------------------------------------------------------------------
    //
    // Forward and backward both ride on the blocked `dt-tensor` kernels,
    // which are multi-threaded above a size threshold yet byte-identical
    // for any `DT_NUM_THREADS` — so gradients (and thus whole training
    // runs) stay bit-reproducible regardless of the host's core count.

    /// `A · B`.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).matmul(self.value(b));
        self.push(Op::MatMul(a, b), v)
    }

    /// `Aᵀ · B`.
    pub fn matmul_tn(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).matmul_tn(self.value(b));
        self.push(Op::MatMulTN(a, b), v)
    }

    /// `A · Bᵀ`.
    pub fn matmul_nt(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).matmul_nt(self.value(b));
        self.push(Op::MatMulNT(a, b), v)
    }

    /// `Aᵀ`.
    pub fn transpose(&mut self, a: Var) -> Var {
        let v = self.value(a).transpose();
        self.push(Op::Transpose(a), v)
    }

    /// Row-wise dot product producing `n×1`.
    pub fn row_dot(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).row_dot(self.value(b));
        self.push(Op::RowDot(a, b), v)
    }

    // -- reductions -------------------------------------------------------------------

    /// Sum of all elements.
    pub fn sum(&mut self, a: Var) -> Var {
        let v = Tensor::scalar(self.value(a).sum());
        self.push(Op::Sum(a), v)
    }

    /// Mean of all elements.
    pub fn mean(&mut self, a: Var) -> Var {
        let v = Tensor::scalar(self.value(a).mean());
        self.push(Op::Mean(a), v)
    }

    /// Squared Frobenius norm.
    pub fn frob_sq(&mut self, a: Var) -> Var {
        let v = Tensor::scalar(self.value(a).frob_sq());
        self.push(Op::FrobSq(a), v)
    }

    /// Per-row sums (`n×1`).
    pub fn row_sums(&mut self, a: Var) -> Var {
        let v = self.value(a).row_sums();
        self.push(Op::RowSums(a), v)
    }

    /// Per-column sums (`1×c`).
    pub fn col_sums(&mut self, a: Var) -> Var {
        let v = self.value(a).col_sums();
        self.push(Op::ColSums(a), v)
    }

    // -- structural ----------------------------------------------------------------------

    /// Row gather (embedding lookup).
    pub fn gather(&mut self, table: Var, indices: Rc<Vec<usize>>) -> Var {
        let v = self.value(table).gather_rows(&indices);
        self.push(Op::Gather(table, indices), v)
    }

    /// Horizontal concatenation `[a | b]`.
    pub fn concat_cols(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).concat_cols(self.value(b));
        self.push(Op::ConcatCols(a, b), v)
    }

    /// Column slice `a[:, lo..hi]`.
    pub fn slice_cols(&mut self, a: Var, lo: usize, hi: usize) -> Var {
        let v = self.value(a).slice_cols(lo, hi);
        self.push(Op::SliceCols(a, lo, hi), v)
    }

    /// `a + bias` with `bias: 1×c` broadcast over rows.
    pub fn add_row_broadcast(&mut self, a: Var, bias: Var) -> Var {
        let v = self.value(a).add_row_broadcast(self.value(bias));
        self.push(Op::AddRowBroadcast(a, bias), v)
    }

    /// `a + bias` with `bias: r×1` broadcast over columns.
    pub fn add_col_broadcast(&mut self, a: Var, bias: Var) -> Var {
        let v = self.value(a).add_col_broadcast(self.value(bias));
        self.push(Op::AddColBroadcast(a, bias), v)
    }

    // -- gradient control / losses ----------------------------------------------------------

    /// Identity forward, zero backward.
    pub fn detach(&mut self, a: Var) -> Var {
        let v = self.value(a).pooled_clone();
        self.push(Op::Detach(a), v)
    }

    /// Numerically stable element-wise BCE with logits.
    pub fn bce_with_logits(&mut self, logits: Var, targets: Var) -> Var {
        let v = self
            .value(logits)
            .zip_map(self.value(targets), dt_tensor::fused::bce_term);
        self.push(Op::BceWithLogits(logits, targets), v)
    }

    /// Fused `mean(bce_with_logits(logits, targets))`: one pass computes
    /// the scalar loss and caches the backward residual `σ(x) − t` in a
    /// single pooled buffer, replacing the composed chain's element-wise
    /// BCE node + mean node (and their allocations).
    ///
    /// Bit-identical to [`Graph::bce_mean_composed`]; setting
    /// `DT_FUSED_ORACLE=1` routes this builder (and
    /// [`Graph::ips_weighted_bce_mean`]) through the composed ops instead —
    /// the oracle mode used to cross-check fused training runs.
    pub fn sigmoid_bce_mean(&mut self, logits: Var, targets: Var) -> Var {
        if fused_oracle_mode() {
            return self.bce_mean_composed(logits, targets);
        }
        let (loss, residual) =
            dt_tensor::fused::sigmoid_bce(self.value(logits), self.value(targets));
        self.push(
            Op::SigmoidBceMean(logits, targets, Rc::new(residual)),
            Tensor::scalar(loss),
        )
    }

    /// Fused `mean(weights ⊙ bce_with_logits(logits, targets))` — the
    /// IPS-weighted rating loss with the propensity weights folded into the
    /// same single pass. Weights are typically constants or detached.
    ///
    /// Bit-identical to `bce_with_logits` + `weighted_mean`; respects the
    /// `DT_FUSED_ORACLE=1` oracle switch (see [`Graph::sigmoid_bce_mean`]).
    pub fn ips_weighted_bce_mean(&mut self, weights: Var, logits: Var, targets: Var) -> Var {
        if fused_oracle_mode() {
            let l = self.bce_with_logits(logits, targets);
            return self.weighted_mean(weights, l);
        }
        let (loss, residual) = dt_tensor::fused::ips_weighted_bce(
            self.value(weights),
            self.value(logits),
            self.value(targets),
        );
        self.push(
            Op::IpsWeightedBceMean(weights, logits, targets, Rc::new(residual)),
            Tensor::scalar(loss),
        )
    }

    // -- backward ------------------------------------------------------------------------------

    /// Reverse sweep from the scalar `loss`; gradients of parameter leaves
    /// are accumulated into `params` — row-sparse deltas (from [`Graph::gather`]
    /// backward) stay sparse all the way into the store.
    ///
    /// # Panics
    /// Panics when `loss` is not `1×1`.
    pub fn backward(&self, loss: Var, params: &mut Params) {
        let grads = self.run_backward(loss);
        for (i, g) in grads.into_iter().enumerate() {
            match (&self.nodes[i].op, g) {
                (Op::Leaf(Some(id)), Some(g)) => params.accumulate_grad_owned(*id, g),
                // Interior gradients are dead once the leaves are charged;
                // hand their buffers back to the step pool.
                (_, Some(Grad::Dense(t))) => t.recycle(),
                (_, Some(Grad::RowSparse(s))) => s.recycle(),
                (_, None) => {}
            }
        }
    }

    /// Reverse sweep that returns the (densified) gradients of the
    /// requested variables (used by gradient checking and the optimizer
    /// tests).
    #[must_use]
    pub fn backward_collect(&self, loss: Var, wanted: &[Var]) -> Vec<Tensor> {
        let grads = self.run_backward(loss);
        wanted
            .iter()
            .map(|v| {
                grads[v.0].clone().map_or_else(
                    || {
                        let t = self.value(*v);
                        // alloc-ok: gradcheck helper, never on the training step path
                        Tensor::zeros(t.rows(), t.cols())
                    },
                    Grad::into_dense,
                )
            })
            .collect()
    }

    fn run_backward(&self, loss: Var) -> Vec<Option<Grad>> {
        assert!(
            self.value(loss).shape().is_scalar(),
            "backward: loss must be 1x1, got {}",
            self.value(loss).shape()
        );
        // alloc-ok: per-backward gradient table (one Option<Grad> slot per tape node) — not f64 scratch, so it cannot ride the step pool
        let mut grads: Vec<Option<Grad>> = vec![None; self.nodes.len()];
        grads[loss.0] = Some(Grad::Dense(Tensor::scalar(1.0)));

        for i in (0..=loss.0).rev() {
            let Some(g) = grads[i].take() else { continue };
            let node = &self.nodes[i];
            // Leaves terminate the sweep, so their gradient may stay
            // sparse; interior nodes densify once before backprop (in this
            // workspace only leaf tables are gathered from, so this path
            // never fires on a sparse gradient in practice).
            let g = if node.requires_grad && !matches!(node.op, Op::Leaf(_)) {
                let gd = g.into_dense();
                self.backprop_node(i, &gd, &mut grads);
                Grad::Dense(gd)
            } else {
                g
            };
            grads[i] = Some(g);
        }
        grads
    }

    fn acc_grad(&self, grads: &mut [Option<Grad>], v: Var, delta: Grad) {
        if !self.wants_grad(v) {
            return;
        }
        match &mut grads[v.0] {
            Some(g) => g.accumulate(delta),
            slot @ None => *slot = Some(delta),
        }
    }

    fn acc(&self, grads: &mut [Option<Grad>], v: Var, delta: Tensor) {
        self.acc_grad(grads, v, Grad::Dense(delta));
    }

    /// Whether a backward rule needs to produce a delta for `v` at all.
    /// Mirrors the store condition in [`Graph::acc_grad`], letting rules
    /// skip computing gradients that would be thrown away (constant
    /// targets/weights in the fused losses).
    fn wants_grad(&self, v: Var) -> bool {
        self.nodes[v.0].requires_grad || matches!(self.nodes[v.0].op, Op::Leaf(None))
    }

    /// In-place fan-in for a borrowed dense delta: when the slot already
    /// holds a dense accumulator the delta is `add_assign`ed directly — no
    /// intermediate copy — and only a first-arrival materialises a (pooled)
    /// clone. This is the non-pool-dependent fix for the old
    /// allocate-then-add fan-in: with the pool disabled the in-place path
    /// is unchanged, the clone merely comes from the global allocator.
    fn acc_ref(&self, grads: &mut [Option<Grad>], v: Var, delta: &Tensor) {
        if !self.wants_grad(v) {
            return;
        }
        match &mut grads[v.0] {
            Some(Grad::Dense(acc)) => acc.add_assign(delta),
            Some(g) => g.accumulate(Grad::Dense(delta.pooled_clone())),
            slot @ None => *slot = Some(Grad::Dense(delta.pooled_clone())),
        }
    }

    /// In-place fan-in of `-delta`: `axpy(-1, ·)` into an existing dense
    /// accumulator (bit-identical to adding the negation — IEEE negation
    /// is exact), materialising the negated tensor only on first arrival.
    fn acc_neg_ref(&self, grads: &mut [Option<Grad>], v: Var, delta: &Tensor) {
        if !self.wants_grad(v) {
            return;
        }
        match &mut grads[v.0] {
            Some(Grad::Dense(acc)) => acc.axpy(-1.0, delta),
            Some(g) => g.accumulate(Grad::Dense(delta.neg())),
            slot @ None => *slot = Some(Grad::Dense(delta.neg())),
        }
    }

    fn acc_rows(&self, grads: &mut [Option<Grad>], v: Var, delta: RowSparse) {
        self.acc_grad(grads, v, Grad::RowSparse(delta));
    }

    #[allow(clippy::too_many_lines)]
    fn backprop_node(&self, i: usize, g: &Tensor, grads: &mut [Option<Grad>]) {
        use Op::*;
        let val = |v: Var| -> &Tensor { &self.nodes[v.0].value };
        let out = &self.nodes[i].value;
        match self.nodes[i].op.clone() {
            Leaf(_) | Constant | Detach(_) => {}

            Add(a, b) => {
                self.acc_ref(grads, a, g);
                self.acc_ref(grads, b, g);
            }
            Sub(a, b) => {
                self.acc_ref(grads, a, g);
                self.acc_neg_ref(grads, b, g);
            }
            Mul(a, b) => {
                self.acc(grads, a, g.mul(val(b)));
                self.acc(grads, b, g.mul(val(a)));
            }
            Div(a, b) => {
                self.acc(grads, a, g.div(val(b)));
                // d(a/b)/db = -a/b² = -out/b
                let db = g.mul(out).div(val(b)).neg();
                self.acc(grads, b, db);
            }

            Neg(a) => self.acc_neg_ref(grads, a, g),
            AddScalar(a, _) => self.acc_ref(grads, a, g),
            MulScalar(a, c) => self.acc(grads, a, g.scale(c)),
            PowConst(a, p) => {
                let da = val(a).map(|x| p * x.powf(p - 1.0)).mul(g);
                self.acc(grads, a, da);
            }
            Sigmoid(a) => {
                let da = out.map(|y| y * (1.0 - y)).mul(g);
                self.acc(grads, a, da);
            }
            Tanh(a) => {
                let da = out.map(|y| 1.0 - y * y).mul(g);
                self.acc(grads, a, da);
            }
            Relu(a) => {
                let da = val(a).zip_map(g, |x, gv| if x > 0.0 { gv } else { 0.0 });
                self.acc(grads, a, da);
            }
            Exp(a) => self.acc(grads, a, out.mul(g)),
            Ln(a) => self.acc(grads, a, g.div(val(a))),
            Sqrt(a) => {
                let da = out.zip_map(g, |y, gv| gv / (2.0 * y));
                self.acc(grads, a, da);
            }
            Sqr(a) => {
                let da = val(a).zip_map(g, |x, gv| 2.0 * x * gv);
                self.acc(grads, a, da);
            }
            Clamp(a, lo, hi) => {
                let da = val(a).zip_map(g, |x, gv| if (lo..=hi).contains(&x) { gv } else { 0.0 });
                self.acc(grads, a, da);
            }

            MulScalarVar(a, s) => {
                let sv = val(s).item();
                self.acc(grads, a, g.scale(sv));
                self.acc(grads, s, Tensor::scalar(g.dot(val(a))));
            }
            DivScalarVar(a, s) => {
                let sv = val(s).item();
                self.acc(grads, a, g.scale(1.0 / sv));
                self.acc(grads, s, Tensor::scalar(-g.dot(out) / sv));
            }

            MatMul(a, b) => {
                self.acc(grads, a, g.matmul_nt(val(b)));
                self.acc(grads, b, val(a).matmul_tn(g));
            }
            MatMulTN(a, b) => {
                // C = AᵀB → dA = B·gᵀ, dB = A·g
                self.acc(grads, a, val(b).matmul_nt(g));
                self.acc(grads, b, val(a).matmul(g));
            }
            MatMulNT(a, b) => {
                // C = A·Bᵀ → dA = g·B, dB = gᵀ·A
                self.acc(grads, a, g.matmul(val(b)));
                self.acc(grads, b, g.matmul_tn(val(a)));
            }
            Transpose(a) => self.acc(grads, a, g.transpose()),
            RowDot(a, b) => {
                // out[i] = Σ_k a[i,k] b[i,k]; g: n×1
                let mut da = val(b).pooled_clone();
                for r in 0..da.rows() {
                    let gv = g.get(r, 0);
                    for v in da.row_mut(r) {
                        *v *= gv;
                    }
                }
                self.acc(grads, a, da);
                let mut db = val(a).pooled_clone();
                for r in 0..db.rows() {
                    let gv = g.get(r, 0);
                    for v in db.row_mut(r) {
                        *v *= gv;
                    }
                }
                self.acc(grads, b, db);
            }

            Sum(a) => {
                let t = val(a);
                self.acc(grads, a, Tensor::pooled_full(t.rows(), t.cols(), g.item()));
            }
            Mean(a) => {
                let t = val(a);
                let c = g.item() / t.len() as f64;
                self.acc(grads, a, Tensor::pooled_full(t.rows(), t.cols(), c));
            }
            FrobSq(a) => {
                self.acc(grads, a, val(a).scale(2.0 * g.item()));
            }
            RowSums(a) => {
                let t = val(a);
                // pool: every element is assigned below.
                let mut da = Tensor::pooled_scratch(t.rows(), t.cols());
                for r in 0..t.rows() {
                    let gv = g.get(r, 0);
                    for v in da.row_mut(r) {
                        *v = gv;
                    }
                }
                self.acc(grads, a, da);
            }
            ColSums(a) => {
                let t = val(a);
                // pool: every row is copied over below.
                let mut da = Tensor::pooled_scratch(t.rows(), t.cols());
                for r in 0..t.rows() {
                    da.row_mut(r).copy_from_slice(g.row(0));
                }
                self.acc(grads, a, da);
            }

            Gather(table, indices) => {
                // Row-sparse delta: O(B·K) instead of materialising an
                // M×K scatter. Densifies to exactly `scatter_add_rows`.
                let t = val(table);
                let ds = RowSparse::from_scatter(t.rows(), t.cols(), &indices, g);
                self.acc_rows(grads, table, ds);
            }
            ConcatCols(a, b) => {
                let ca = val(a).cols();
                self.acc(grads, a, g.slice_cols(0, ca));
                self.acc(grads, b, g.slice_cols(ca, g.cols()));
            }
            SliceCols(a, lo, _hi) => {
                let t = val(a);
                // pool: only the sliced columns are written, the rest of
                // the gradient must be zero — so a zeroed buffer.
                let mut da = Tensor::pooled_zeros(t.rows(), t.cols());
                for r in 0..t.rows() {
                    da.row_mut(r)[lo..lo + g.cols()].copy_from_slice(g.row(r));
                }
                self.acc(grads, a, da);
            }
            AddRowBroadcast(a, bias) => {
                self.acc_ref(grads, a, g);
                self.acc(grads, bias, g.col_sums());
            }
            AddColBroadcast(a, bias) => {
                self.acc_ref(grads, a, g);
                self.acc(grads, bias, g.row_sums());
            }

            BceWithLogits(x, t) => {
                let dx = val(x)
                    .zip_map(val(t), |xv, tv| stable_sigmoid(xv) - tv)
                    .mul(g);
                self.acc(grads, x, dx);
                let dt = val(x).neg().mul(g);
                self.acc(grads, t, dt);
            }

            SigmoidBceMean(x, t, r) => {
                // Composed sweep: mean backward emits `c = g/n` everywhere,
                // then the BCE node multiplies the cached residual by it.
                let c = g.item() / r.len() as f64;
                self.acc(grads, x, dt_tensor::fused::sigmoid_bce_backward(&r, c));
                if self.wants_grad(t) {
                    let dt = val(x).map(|xv| -xv * c);
                    self.acc(grads, t, dt);
                }
            }
            IpsWeightedBceMean(w, x, t, r) => {
                let c = g.item() / r.len() as f64;
                let dx = dt_tensor::fused::ips_weighted_bce_backward(&r, val(w), c);
                self.acc(grads, x, dx);
                if self.wants_grad(t) {
                    let dt = val(x).zip_map(val(w), |xv, wv| -xv * (c * wv));
                    self.acc(grads, t, dt);
                }
                if self.wants_grad(w) {
                    // dL/dw_i = c · bce_i; recomputed on demand — the
                    // weights are detached/constant in every trainer, so
                    // this only runs in gradient-check style tests.
                    let dw =
                        val(x).zip_map(val(t), |xv, tv| c * dt_tensor::fused::bce_term(xv, tv));
                    self.acc(grads, w, dw);
                }
            }
        }
    }
}

/// When `true`, the fused-loss builders record composed primitive ops
/// instead — the oracle mode (`DT_FUSED_ORACLE=1`). Safe to flip per run
/// because fused and composed are pinned bit-identical.
fn fused_oracle_mode() -> bool {
    use std::sync::OnceLock;
    static ORACLE: OnceLock<bool> = OnceLock::new();
    *ORACLE.get_or_init(|| {
        std::env::var("DT_FUSED_ORACLE").is_ok_and(|v| !matches!(v.as_str(), "" | "0"))
    })
}

impl Drop for Graph {
    /// Dropping the tape returns its buffers to the thread-local pool:
    /// every node value the graph uniquely owns (forward intermediates,
    /// constants, fused-loss residuals) is recycled. Parameter leaves are
    /// shared with their [`Params`] store (`Rc` strong count > 1) and are
    /// left untouched — so the PR 3 rule "drop the tape before
    /// `opt.step`" now also hands the step's working set back for reuse.
    fn drop(&mut self) {
        for node in self.nodes.drain(..) {
            match node.op {
                Op::SigmoidBceMean(_, _, r) | Op::IpsWeightedBceMean(_, _, _, r) => {
                    if let Ok(t) = Rc::try_unwrap(r) {
                        t.recycle();
                    }
                }
                _ => {}
            }
            if let Ok(t) = Rc::try_unwrap(node.value) {
                t.recycle();
            }
        }
    }
}

/// Overflow-free logistic sigmoid (canonical definition lives with the
/// fused kernels in `dt-tensor` so forward, backward and fused paths share
/// one rounding behaviour).
pub(crate) use dt_tensor::fused::stable_sigmoid;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_values() {
        let mut g = Graph::new();
        let a = g.constant(Tensor::from_rows(&[&[1.0, 2.0]]));
        let b = g.constant(Tensor::from_rows(&[&[3.0, 4.0]]));
        let s = g.add(a, b);
        assert_eq!(g.value(s).data(), &[4.0, 6.0]);
        let m = g.mul(a, b);
        assert_eq!(g.value(m).data(), &[3.0, 8.0]);
        let total = g.sum(m);
        assert_eq!(g.item(total), 11.0);
    }

    #[test]
    fn simple_gradient_flows_to_params() {
        let mut params = Params::new();
        let w = params.add("w", Tensor::from_rows(&[&[3.0]]));
        let mut g = Graph::new();
        let wv = g.param(&params, w);
        let y = g.sqr(wv); // y = w², dy/dw = 2w = 6
        let loss = g.sum(y);
        g.backward(loss, &mut params);
        assert_eq!(params.grad(w).item(), 6.0);
    }

    #[test]
    fn detach_blocks_gradient() {
        let mut params = Params::new();
        let w = params.add("w", Tensor::scalar(2.0));
        let mut g = Graph::new();
        let wv = g.param(&params, w);
        let d = g.detach(wv);
        let prod = g.mul(wv, d); // loss = w · stop(w); dloss/dw = stop(w) = 2
        let loss = g.sum(prod);
        g.backward(loss, &mut params);
        assert_eq!(params.grad(w).item(), 2.0);
    }

    #[test]
    fn grad_accumulates_over_fanout() {
        let mut params = Params::new();
        let w = params.add("w", Tensor::scalar(5.0));
        let mut g = Graph::new();
        let wv = g.param(&params, w);
        let sum = g.add(wv, wv); // 2w → grad 2
        let loss = g.sum(sum);
        g.backward(loss, &mut params);
        assert_eq!(params.grad(w).item(), 2.0);
    }

    #[test]
    fn constant_gets_no_gradient() {
        let mut params = Params::new();
        let w = params.add("w", Tensor::scalar(1.0));
        let mut g = Graph::new();
        let wv = g.param(&params, w);
        let c = g.scalar(10.0);
        let prod = g.mul(wv, c);
        let loss = g.sum(prod);
        g.backward(loss, &mut params);
        assert_eq!(params.grad(w).item(), 10.0);
    }

    #[test]
    #[should_panic(expected = "loss must be 1x1")]
    fn non_scalar_loss_panics() {
        let mut params = Params::new();
        let w = params.add("w", Tensor::ones(2, 2));
        let mut g = Graph::new();
        let wv = g.param(&params, w);
        g.backward(wv, &mut params);
    }

    #[test]
    fn stable_sigmoid_extremes() {
        assert_eq!(stable_sigmoid(1000.0), 1.0);
        assert_eq!(stable_sigmoid(-1000.0), 0.0);
        assert!((stable_sigmoid(0.0) - 0.5).abs() < 1e-15);
    }

    #[test]
    fn bce_with_logits_matches_naive_formula() {
        let mut g = Graph::new();
        let x = g.constant(Tensor::row_vec(&[0.3, -1.2, 4.0]));
        let t = g.constant(Tensor::row_vec(&[1.0, 0.0, 1.0]));
        let l = g.bce_with_logits(x, t);
        for (i, (&xv, &tv)) in [0.3, -1.2, 4.0].iter().zip(&[1.0, 0.0, 1.0]).enumerate() {
            let p = stable_sigmoid(xv);
            let naive = -(tv * p.ln() + (1.0 - tv) * (1.0 - p).ln());
            assert!((g.value(l).data()[i] - naive).abs() < 1e-12);
        }
    }

    #[test]
    fn gather_gradient_scatter_adds() {
        let mut params = Params::new();
        let table = params.add("t", Tensor::from_rows(&[&[1.0, 1.0], &[2.0, 2.0]]));
        let mut g = Graph::new();
        let tv = g.param(&params, table);
        let rows = g.gather(tv, Rc::new(vec![1, 1, 0]));
        let s = g.sum(rows);
        g.backward(s, &mut params);
        // Row 1 gathered twice, row 0 once — and the delta stayed sparse.
        assert!(!params.grad(table).is_dense());
        let dense = params.grad(table).to_dense();
        assert_eq!(dense.row(1), &[2.0, 2.0]);
        assert_eq!(dense.row(0), &[1.0, 1.0]);
    }
}
