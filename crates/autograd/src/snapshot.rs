//! Checkpointing: serialisable snapshots of a [`Params`] store.
//!
//! Lives behind the (default-on) `serde` feature so the core engine stays
//! dependency-free for the offline verification harness.

use std::rc::Rc;

use dt_tensor::Tensor;

use crate::params::Params;

/// A serialisable snapshot of a [`Params`] store (names + values; gradients
/// are not checkpointed).
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct ParamsSnapshot {
    entries: Vec<(String, Tensor)>,
}

impl Params {
    /// Captures the current parameter values.
    #[must_use]
    pub fn snapshot(&self) -> ParamsSnapshot {
        ParamsSnapshot {
            entries: self
                .ids()
                .map(|id| (self.name(id).to_owned(), self.value(id).clone()))
                .collect(),
        }
    }

    /// Restores values from a snapshot taken on an identically-structured
    /// store (same names, same shapes, same order). Gradients are zeroed.
    ///
    /// # Panics
    /// Panics on any structural mismatch — restoring into the wrong model
    /// is a programmer error worth failing loudly on.
    pub fn restore(&mut self, snapshot: &ParamsSnapshot) {
        assert_eq!(
            self.len(),
            snapshot.entries.len(),
            "restore: {} params vs {} in snapshot",
            self.len(),
            snapshot.entries.len()
        );
        let ids: Vec<_> = self.ids().collect();
        for (id, (name, value)) in ids.into_iter().zip(&snapshot.entries) {
            assert_eq!(self.name(id), name, "restore: parameter name mismatch");
            assert_eq!(
                self.value(id).shape(),
                value.shape(),
                "restore: shape mismatch for {name}"
            );
            self.entry_mut(id).value = Rc::new(value.clone());
        }
        self.zero_grad();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ParamId;

    fn store() -> (Params, ParamId, ParamId) {
        let mut p = Params::new();
        let a = p.add("a", Tensor::from_rows(&[&[1.0, 2.0]]));
        let b = p.add("b", Tensor::scalar(3.0));
        (p, a, b)
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let (mut p, a, b) = store();
        let snap = p.snapshot();
        p.value_mut(a).set(0, 0, 99.0);
        p.value_mut(b).set(0, 0, -1.0);
        p.accumulate_grad(a, &Tensor::ones(1, 2));
        p.restore(&snap);
        assert_eq!(p.value(a).get(0, 0), 1.0);
        assert_eq!(p.value(b).item(), 3.0);
        assert_eq!(
            p.grad(a).to_dense().sum(),
            0.0,
            "gradients zeroed on restore"
        );
    }

    #[test]
    fn snapshot_survives_json() {
        let (p, _, _) = store();
        let json = serde_json::to_string(&p.snapshot()).unwrap();
        let back: ParamsSnapshot = serde_json::from_str(&json).unwrap();
        let (mut q, a, _) = store();
        q.value_mut(a).set(0, 1, 42.0);
        q.restore(&back);
        assert_eq!(q.value(a).get(0, 1), 2.0);
    }

    #[test]
    #[should_panic(expected = "parameter name mismatch")]
    fn restore_into_wrong_store_panics() {
        let (p, _, _) = store();
        let snap = p.snapshot();
        let mut other = Params::new();
        other.add("x", Tensor::from_rows(&[&[0.0, 0.0]]));
        other.add("b", Tensor::scalar(0.0));
        other.restore(&snap);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn restore_with_wrong_shape_panics() {
        let (p, _, _) = store();
        let snap = p.snapshot();
        let mut other = Params::new();
        other.add("a", Tensor::zeros(2, 2));
        other.add("b", Tensor::scalar(0.0));
        other.restore(&snap);
    }
}
