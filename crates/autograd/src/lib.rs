//! # dt-autograd
//!
//! A tape-based reverse-mode automatic-differentiation engine over
//! [`dt_tensor::Tensor`], playing the role PyTorch's autograd plays in the
//! original implementation of *"Uncovering the Propensity Identification
//! Problem in Debiased Recommendations"* (ICDE 2024).
//!
//! ## Design
//!
//! * **Enum ops, no closures.** Every differentiable operation is a variant
//!   of [`op::Op`] with an explicit, auditable backward rule. The tape is a
//!   `Vec` of nodes in topological order (construction order), so backward
//!   is a single reverse sweep.
//! * **Graph-per-step.** Training loops build a fresh [`Graph`] per
//!   mini-batch. Parameters live outside the graph in a [`Params`] store of
//!   reference-counted tensors, so mounting a large embedding table as a
//!   leaf costs one `Rc` clone, not a copy.
//! * **Gradient pruning.** `requires_grad` propagates forward; branches
//!   behind [`Graph::detach`] (e.g. propensities used as IPS weights) cost
//!   nothing at backward time.
//! * **Row-sparse embedding gradients.** The backward rule of
//!   [`Graph::gather`] emits a [`dt_tensor::RowSparse`] delta and [`Params`]
//!   accumulates [`dt_tensor::Grad`] values, so a `B`-row mini-batch never
//!   materialises an `M×K` gradient unless a full-table (dense) loss term
//!   is present — see DESIGN.md §10.
//! * **Verified by finite differences.** The [`gradcheck`] module compares
//!   every op's analytic gradient against central differences; the test
//!   suite runs it over randomized shapes.
//!
//! ## Example
//!
//! ```
//! use dt_autograd::{Graph, Params};
//! use dt_tensor::Tensor;
//!
//! let mut params = Params::new();
//! let w = params.add("w", Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]));
//!
//! let mut g = Graph::new();
//! let wv = g.param(&params, w);
//! let loss = g.frob_sq(wv); // ‖W‖²_F
//! g.backward(loss, &mut params);
//!
//! // d‖W‖²_F/dW = 2W
//! assert_eq!(params.grad(w).to_dense().data(), &[2.0, 4.0, 6.0, 8.0]);
//! ```

#![forbid(unsafe_code)]

mod compose;
pub mod gradcheck;
mod graph;
mod op;
mod params;
#[cfg(feature = "serde")]
mod snapshot;

pub use dt_tensor::{Grad, RowSparse};
pub use graph::{Graph, Var};
pub use op::Op;
pub use params::{ParamId, Params};
#[cfg(feature = "serde")]
pub use snapshot::ParamsSnapshot;
