//! Composite differentiable helpers built from the primitive ops.
//!
//! These are the loss fragments shared by the debiasing methods: weighted
//! means over a mini-batch, masked squared error, clipped inverse-propensity
//! weights, and the Gram-trick Frobenius penalties from the DT losses.

use crate::{Graph, Var};
use dt_tensor::Tensor;

impl Graph {
    /// Mean squared error `mean((a − b)²)`.
    pub fn mse(&mut self, a: Var, b: Var) -> Var {
        let d = self.sub(a, b);
        let sq = self.sqr(d);
        self.mean(sq)
    }

    /// Element-wise squared error `(a − b)²` (no reduction).
    pub fn squared_error(&mut self, a: Var, b: Var) -> Var {
        let d = self.sub(a, b);
        self.sqr(d)
    }

    /// Mean of the element-wise product `w ⊙ x` — the building block for
    /// every IPS/DR-style reweighted loss. `w` is typically a constant or a
    /// detached propensity.
    pub fn weighted_mean(&mut self, w: Var, x: Var) -> Var {
        let p = self.mul(w, x);
        self.mean(p)
    }

    /// Self-normalised weighted mean `Σ(w⊙x) / Σw` (the SNIPS estimator
    /// core). Differentiable in both `w` and `x`.
    pub fn self_normalized_mean(&mut self, w: Var, x: Var) -> Var {
        let num0 = self.mul(w, x);
        let num = self.sum(num0);
        let den = self.sum(w);
        self.div(num, den)
    }

    /// Mean binary cross-entropy with logits. Rides on the fused
    /// [`Graph::sigmoid_bce_mean`] kernel (bit-identical to the composed
    /// chain, one pass, one pooled buffer); every trainer that calls
    /// `bce_mean` gets the fused path for free.
    pub fn bce_mean(&mut self, logits: Var, targets: Var) -> Var {
        self.sigmoid_bce_mean(logits, targets)
    }

    /// The composed-op reference for [`Graph::sigmoid_bce_mean`]: an
    /// element-wise BCE node followed by a mean node. This is the oracle
    /// the fused kernel is pinned bit-identical to (and the path taken
    /// under `DT_FUSED_ORACLE=1`).
    pub fn bce_mean_composed(&mut self, logits: Var, targets: Var) -> Var {
        let l = self.bce_with_logits(logits, targets);
        self.mean(l)
    }

    /// Inverse of a clipped tensor: `1 / max(x, clip)` — the standard
    /// propensity-clipping used by every IPS/DR variant in the paper.
    pub fn clipped_inverse(&mut self, x: Var, clip: f64) -> Var {
        let c = self.clamp(x, clip, f64::INFINITY);
        let ones = self.constant(Tensor::ones(self.value(x).rows(), self.value(x).cols()));
        self.div(ones, c)
    }

    /// `‖AᵀB‖²_F` — the disentangling penalty between two embedding blocks
    /// sharing a row dimension (cheap: the product is `k₁×k₂`).
    pub fn disentangle_penalty(&mut self, a: Var, b: Var) -> Var {
        let prod = self.matmul_tn(a, b);
        self.frob_sq(prod)
    }

    /// `‖A·Bᵀ‖²_F` computed through the Gram identity
    /// `trace((AᵀA)(BᵀB))` in `O((m+n)k²)` — the paper's regularisation
    /// term at KuaiRec scale without materialising the `m×n` product.
    pub fn cross_gram_penalty(&mut self, a: Var, b: Var) -> Var {
        let ga = self.matmul_tn(a, a);
        let gb = self.matmul_tn(b, b);
        let prod = self.mul(ga, gb);
        // trace(Ga·Gb) = Σ_ij Ga[i,j]·Gb[j,i]; both are symmetric so this
        // equals the element-wise sum of Ga ⊙ Gb.
        self.sum(prod)
    }

    /// Shannon-entropy confidence penalty `−mean(p·ln p + (1−p)·ln(1−p))`
    /// over probabilities `p` (used by CVIB). Inputs are clamped away from
    /// {0, 1} for numerical stability.
    pub fn entropy_penalty(&mut self, p: Var) -> Var {
        let pc = self.clamp(p, 1e-9, 1.0 - 1e-9);
        let lnp = self.ln(pc);
        let term1 = self.mul(pc, lnp);
        let one = self.constant(Tensor::ones(self.value(p).rows(), self.value(p).cols()));
        let q = self.sub(one, pc);
        let lnq = self.ln(q);
        let term2 = self.mul(q, lnq);
        let s = self.add(term1, term2);
        let m = self.mean(s);
        self.neg(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::assert_gradcheck;

    #[test]
    fn mse_value() {
        let mut g = Graph::new();
        let a = g.constant(Tensor::row_vec(&[1.0, 2.0]));
        let b = g.constant(Tensor::row_vec(&[3.0, 2.0]));
        let m = g.mse(a, b);
        assert_eq!(g.item(m), 2.0);
    }

    #[test]
    fn self_normalized_mean_value() {
        let mut g = Graph::new();
        let w = g.constant(Tensor::row_vec(&[1.0, 3.0]));
        let x = g.constant(Tensor::row_vec(&[2.0, 4.0]));
        let s = g.self_normalized_mean(w, x);
        assert!((g.item(s) - (2.0 + 12.0) / 4.0).abs() < 1e-12);
    }

    #[test]
    fn clipped_inverse_clips() {
        let mut g = Graph::new();
        let x = g.constant(Tensor::row_vec(&[0.5, 0.001]));
        let inv = g.clipped_inverse(x, 0.05);
        assert_eq!(g.value(inv).data(), &[2.0, 20.0]);
    }

    #[test]
    fn cross_gram_matches_direct() {
        let a = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, -1.0], &[0.5, 0.5]]);
        let b = Tensor::from_rows(&[&[2.0, 0.0], &[1.0, 1.0]]);
        let mut g = Graph::new();
        let av = g.constant(a.clone());
        let bv = g.constant(b.clone());
        let pen = g.cross_gram_penalty(av, bv);
        let direct = a.matmul_nt(&b).frob_sq();
        assert!((g.item(pen) - direct).abs() < 1e-9);
    }

    #[test]
    fn cross_gram_gradient_is_correct() {
        let a = Tensor::from_rows(&[&[0.4, -0.3], &[0.2, 0.9]]);
        let b = Tensor::from_rows(&[&[1.0, 0.2], &[-0.5, 0.3], &[0.1, 0.1]]);
        assert_gradcheck(&[a, b], 1e-5, |g, vars| {
            g.cross_gram_penalty(vars[0], vars[1])
        });
    }

    #[test]
    fn disentangle_penalty_gradient_is_correct() {
        let a = Tensor::from_rows(&[&[0.4, -0.3], &[0.2, 0.9], &[1.0, 0.0]]);
        let b = Tensor::from_rows(&[&[1.0], &[0.5], &[-0.2]]);
        assert_gradcheck(&[a, b], 1e-5, |g, vars| {
            g.disentangle_penalty(vars[0], vars[1])
        });
    }

    #[test]
    fn entropy_penalty_max_at_half() {
        let mut g = Graph::new();
        let p_half = g.constant(Tensor::row_vec(&[0.5]));
        let p_sure = g.constant(Tensor::row_vec(&[0.99]));
        let e_half = g.entropy_penalty(p_half);
        let e_sure = g.entropy_penalty(p_sure);
        assert!(g.item(e_half) > g.item(e_sure));
        assert!((g.item(e_half) - std::f64::consts::LN_2).abs() < 1e-9);
    }
}
