//! Finite-difference verification of analytic gradients.
//!
//! Every op's backward rule in this crate is validated by comparing the
//! tape's gradient against central differences of the forward computation.
//! The harness is public so downstream crates (models, losses) can check
//! their composite computations the same way.

use dt_tensor::Tensor;

use crate::{Graph, Var};

/// Result of a gradient check for one input tensor.
#[derive(Debug)]
pub struct GradCheckReport {
    /// Largest absolute difference between analytic and numeric gradient.
    pub max_abs_err: f64,
    /// Largest difference relative to `max(1, |numeric|)`.
    pub max_rel_err: f64,
}

/// Checks the gradient of `build` with respect to every tensor in `inputs`.
///
/// `build` receives a fresh graph plus one differentiable leaf per input and
/// must return a **scalar** output variable. Returns one report per input.
///
/// # Panics
/// Panics if `build` returns a non-scalar variable.
#[must_use]
pub fn gradcheck(
    inputs: &[Tensor],
    eps: f64,
    build: impl Fn(&mut Graph, &[Var]) -> Var,
) -> Vec<GradCheckReport> {
    // Analytic pass.
    let mut g = Graph::new();
    let vars: Vec<Var> = inputs.iter().map(|t| g.leaf(t.clone())).collect();
    let out = build(&mut g, &vars);
    let analytic = g.backward_collect(out, &vars);

    // Numeric pass: central differences per element.
    let eval = |perturbed: &[Tensor]| -> f64 {
        let mut g = Graph::new();
        let vars: Vec<Var> = perturbed.iter().map(|t| g.leaf(t.clone())).collect();
        let out = build(&mut g, &vars);
        g.item(out)
    };

    let mut reports = Vec::with_capacity(inputs.len());
    for (k, input) in inputs.iter().enumerate() {
        let mut max_abs = 0.0_f64;
        let mut max_rel = 0.0_f64;
        for idx in 0..input.len() {
            let mut plus: Vec<Tensor> = inputs.to_vec();
            plus[k].data_mut()[idx] += eps;
            let mut minus: Vec<Tensor> = inputs.to_vec();
            minus[k].data_mut()[idx] -= eps;
            let numeric = (eval(&plus) - eval(&minus)) / (2.0 * eps);
            let a = analytic[k].data()[idx];
            let abs = (a - numeric).abs();
            max_abs = max_abs.max(abs);
            max_rel = max_rel.max(abs / numeric.abs().max(1.0));
        }
        reports.push(GradCheckReport {
            max_abs_err: max_abs,
            max_rel_err: max_rel,
        });
    }
    reports
}

/// Convenience assertion wrapper around [`gradcheck`].
///
/// # Panics
/// Panics when any input's relative gradient error exceeds `tol`.
pub fn assert_gradcheck(inputs: &[Tensor], tol: f64, build: impl Fn(&mut Graph, &[Var]) -> Var) {
    let reports = gradcheck(inputs, 1e-5, build);
    for (k, r) in reports.iter().enumerate() {
        assert!(
            r.max_rel_err < tol,
            "gradient check failed for input {k}: rel err {:.3e}, abs err {:.3e}",
            r.max_rel_err,
            r.max_abs_err
        );
    }
}
