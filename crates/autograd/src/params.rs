//! Parameter storage shared between model code, graphs and optimizers.

use std::rc::Rc;

use dt_tensor::Tensor;

/// Handle to a parameter inside a [`Params`] store.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ParamId(pub(crate) usize);

struct Entry {
    name: String,
    value: Rc<Tensor>,
    grad: Tensor,
}

/// A store of named, trainable tensors plus their accumulated gradients.
///
/// Values are reference counted: mounting a parameter into a [`crate::Graph`]
/// is an `Rc` clone. The optimizer mutates values through
/// [`Params::value_mut`], which copies-on-write only if a graph from a
/// previous step is still alive (normally it is not).
#[derive(Default)]
pub struct Params {
    entries: Vec<Entry>,
}

impl Params {
    /// An empty store.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a parameter and returns its handle.
    pub fn add(&mut self, name: impl Into<String>, value: Tensor) -> ParamId {
        let grad = Tensor::zeros(value.rows(), value.cols());
        self.entries.push(Entry {
            name: name.into(),
            value: Rc::new(value),
            grad,
        });
        ParamId(self.entries.len() - 1)
    }

    /// Number of registered parameters (tensors, not scalars).
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` when no parameters are registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total number of scalar weights across all parameters.
    #[must_use]
    pub fn n_scalars(&self) -> usize {
        self.entries.iter().map(|e| e.value.len()).sum()
    }

    /// The parameter's name.
    #[must_use]
    pub fn name(&self, id: ParamId) -> &str {
        &self.entries[id.0].name
    }

    /// Immutable view of the parameter value.
    #[must_use]
    pub fn value(&self, id: ParamId) -> &Tensor {
        &self.entries[id.0].value
    }

    /// The reference-counted value (used by [`crate::Graph::param`]).
    #[must_use]
    pub(crate) fn value_rc(&self, id: ParamId) -> Rc<Tensor> {
        Rc::clone(&self.entries[id.0].value)
    }

    /// Mutable access to the parameter value (copy-on-write).
    pub fn value_mut(&mut self, id: ParamId) -> &mut Tensor {
        Rc::make_mut(&mut self.entries[id.0].value)
    }

    /// Immutable view of the accumulated gradient.
    #[must_use]
    pub fn grad(&self, id: ParamId) -> &Tensor {
        &self.entries[id.0].grad
    }

    /// Mutable access to the accumulated gradient.
    pub fn grad_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.entries[id.0].grad
    }

    /// Adds `delta` into the gradient accumulator for `id`.
    pub fn accumulate_grad(&mut self, id: ParamId, delta: &Tensor) {
        self.entries[id.0].grad.add_assign(delta);
    }

    /// Zeroes every gradient accumulator (call between optimizer steps).
    pub fn zero_grad(&mut self) {
        for e in &mut self.entries {
            e.grad.fill_zero();
        }
    }

    /// Iterates over all parameter handles.
    pub fn ids(&self) -> impl Iterator<Item = ParamId> + '_ {
        (0..self.entries.len()).map(ParamId)
    }

    /// Global L2 norm of all gradients, used for clipping diagnostics.
    #[must_use]
    pub fn grad_norm(&self) -> f64 {
        self.entries
            .iter()
            .map(|e| e.grad.frob_sq())
            .sum::<f64>()
            .sqrt()
    }

    /// Returns `true` when every parameter and gradient is finite.
    #[must_use]
    pub fn all_finite(&self) -> bool {
        self.entries
            .iter()
            .all(|e| e.value.all_finite() && e.grad.all_finite())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_lookup() {
        let mut p = Params::new();
        let a = p.add("a", Tensor::ones(2, 3));
        let b = p.add("b", Tensor::zeros(1, 1));
        assert_eq!(p.len(), 2);
        assert_eq!(p.n_scalars(), 7);
        assert_eq!(p.name(a), "a");
        assert_eq!(p.name(b), "b");
        assert_eq!(p.value(a).sum(), 6.0);
        assert_eq!(p.grad(a).sum(), 0.0);
    }

    #[test]
    fn grad_accumulation_and_zero() {
        let mut p = Params::new();
        let a = p.add("a", Tensor::zeros(2, 2));
        p.accumulate_grad(a, &Tensor::ones(2, 2));
        p.accumulate_grad(a, &Tensor::ones(2, 2));
        assert_eq!(p.grad(a).sum(), 8.0);
        assert_eq!(p.grad_norm(), 4.0);
        p.zero_grad();
        assert_eq!(p.grad(a).sum(), 0.0);
    }

    #[test]
    fn value_mut_copy_on_write() {
        let mut p = Params::new();
        let a = p.add("a", Tensor::zeros(1, 2));
        let shared = p.value_rc(a); // simulate a live graph holding the value
        p.value_mut(a).set(0, 0, 5.0);
        assert_eq!(p.value(a).get(0, 0), 5.0);
        assert_eq!(shared.get(0, 0), 0.0, "old graph must see the old value");
    }

    #[test]
    fn finiteness_check() {
        let mut p = Params::new();
        let a = p.add("a", Tensor::ones(1, 1));
        assert!(p.all_finite());
        p.value_mut(a).set(0, 0, f64::NAN);
        assert!(!p.all_finite());
    }
}

// ---------------------------------------------------------------------------
// Checkpointing
// ---------------------------------------------------------------------------

/// A serialisable snapshot of a [`Params`] store (names + values; gradients
/// are not checkpointed).
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct ParamsSnapshot {
    entries: Vec<(String, Tensor)>,
}

impl Params {
    /// Captures the current parameter values.
    #[must_use]
    pub fn snapshot(&self) -> ParamsSnapshot {
        ParamsSnapshot {
            entries: self
                .entries
                .iter()
                .map(|e| (e.name.clone(), (*e.value).clone()))
                .collect(),
        }
    }

    /// Restores values from a snapshot taken on an identically-structured
    /// store (same names, same shapes, same order). Gradients are zeroed.
    ///
    /// # Panics
    /// Panics on any structural mismatch — restoring into the wrong model
    /// is a programmer error worth failing loudly on.
    pub fn restore(&mut self, snapshot: &ParamsSnapshot) {
        assert_eq!(
            self.entries.len(),
            snapshot.entries.len(),
            "restore: {} params vs {} in snapshot",
            self.entries.len(),
            snapshot.entries.len()
        );
        for (e, (name, value)) in self.entries.iter_mut().zip(&snapshot.entries) {
            assert_eq!(&e.name, name, "restore: parameter name mismatch");
            assert_eq!(
                e.value.shape(),
                value.shape(),
                "restore: shape mismatch for {name}"
            );
            e.value = Rc::new(value.clone());
            e.grad.fill_zero();
        }
    }
}

#[cfg(test)]
mod snapshot_tests {
    use super::*;

    fn store() -> (Params, ParamId, ParamId) {
        let mut p = Params::new();
        let a = p.add("a", Tensor::from_rows(&[&[1.0, 2.0]]));
        let b = p.add("b", Tensor::scalar(3.0));
        (p, a, b)
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let (mut p, a, b) = store();
        let snap = p.snapshot();
        p.value_mut(a).set(0, 0, 99.0);
        p.value_mut(b).set(0, 0, -1.0);
        p.accumulate_grad(a, &Tensor::ones(1, 2));
        p.restore(&snap);
        assert_eq!(p.value(a).get(0, 0), 1.0);
        assert_eq!(p.value(b).item(), 3.0);
        assert_eq!(p.grad(a).sum(), 0.0, "gradients zeroed on restore");
    }

    #[test]
    fn snapshot_survives_json() {
        let (p, _, _) = store();
        let json = serde_json::to_string(&p.snapshot()).unwrap();
        let back: ParamsSnapshot = serde_json::from_str(&json).unwrap();
        let (mut q, a, _) = store();
        q.value_mut(a).set(0, 1, 42.0);
        q.restore(&back);
        assert_eq!(q.value(a).get(0, 1), 2.0);
    }

    #[test]
    #[should_panic(expected = "parameter name mismatch")]
    fn restore_into_wrong_store_panics() {
        let (p, _, _) = store();
        let snap = p.snapshot();
        let mut other = Params::new();
        other.add("x", Tensor::from_rows(&[&[0.0, 0.0]]));
        other.add("b", Tensor::scalar(0.0));
        other.restore(&snap);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn restore_with_wrong_shape_panics() {
        let (p, _, _) = store();
        let snap = p.snapshot();
        let mut other = Params::new();
        other.add("a", Tensor::zeros(2, 2));
        other.add("b", Tensor::scalar(0.0));
        other.restore(&snap);
    }
}
