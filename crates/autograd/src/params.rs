//! Parameter storage shared between model code, graphs and optimizers.

use std::rc::Rc;

use dt_tensor::{Grad, RowSparse, Tensor};

/// Handle to a parameter inside a [`Params`] store.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ParamId(pub(crate) usize);

pub(crate) struct Entry {
    pub(crate) name: String,
    pub(crate) value: Rc<Tensor>,
    pub(crate) grad: Grad,
}

/// A store of named, trainable tensors plus their accumulated gradients.
///
/// Values are reference counted: mounting a parameter into a [`crate::Graph`]
/// is an `Rc` clone. The optimizer mutates values through
/// [`Params::value_mut`], which copies-on-write only if a graph from a
/// previous step is still alive (normally it is not).
///
/// Gradients are stored as [`Grad`] — row-sparse until a dense delta
/// arrives — so a mini-batch that gathers `B` rows of an `M × K` table
/// accumulates, clips and zeroes in `O(B·K)` instead of `O(M·K)`.
#[derive(Default)]
pub struct Params {
    entries: Vec<Entry>,
}

impl Params {
    /// An empty store.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a parameter and returns its handle.
    pub fn add(&mut self, name: impl Into<String>, value: Tensor) -> ParamId {
        let grad = Grad::empty(value.rows(), value.cols());
        self.entries.push(Entry {
            name: name.into(),
            value: Rc::new(value),
            grad,
        });
        ParamId(self.entries.len() - 1)
    }

    /// Number of registered parameters (tensors, not scalars).
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` when no parameters are registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total number of scalar weights across all parameters.
    #[must_use]
    pub fn n_scalars(&self) -> usize {
        self.entries.iter().map(|e| e.value.len()).sum()
    }

    /// The parameter's name.
    #[must_use]
    pub fn name(&self, id: ParamId) -> &str {
        &self.entries[id.0].name
    }

    /// Immutable view of the parameter value.
    #[must_use]
    pub fn value(&self, id: ParamId) -> &Tensor {
        &self.entries[id.0].value
    }

    /// The reference-counted value (used by [`crate::Graph::param`]).
    #[must_use]
    pub(crate) fn value_rc(&self, id: ParamId) -> Rc<Tensor> {
        Rc::clone(&self.entries[id.0].value)
    }

    /// Mutable access to the parameter value (copy-on-write).
    pub fn value_mut(&mut self, id: ParamId) -> &mut Tensor {
        Rc::make_mut(&mut self.entries[id.0].value)
    }

    /// Raw entry access for sibling modules (checkpoint restore).
    #[cfg(feature = "serde")]
    pub(crate) fn entry_mut(&mut self, id: ParamId) -> &mut Entry {
        &mut self.entries[id.0]
    }

    /// Immutable view of the accumulated gradient.
    #[must_use]
    pub fn grad(&self, id: ParamId) -> &Grad {
        &self.entries[id.0].grad
    }

    /// Mutable access to the accumulated gradient.
    pub fn grad_mut(&mut self, id: ParamId) -> &mut Grad {
        &mut self.entries[id.0].grad
    }

    /// The gradient together with mutable access to the value — the
    /// optimizer-step view. Borrowing both sides at once lets the step
    /// read the gradient in place instead of cloning it.
    pub fn grad_and_value_mut(&mut self, id: ParamId) -> (&Grad, &mut Tensor) {
        let e = &mut self.entries[id.0];
        (&e.grad, Rc::make_mut(&mut e.value))
    }

    /// Adds a dense `delta` into the gradient accumulator for `id`.
    pub fn accumulate_grad(&mut self, id: ParamId, delta: &Tensor) {
        self.entries[id.0]
            .grad
            .accumulate(Grad::Dense(delta.clone()));
    }

    /// Adds a row-sparse `delta` into the gradient accumulator for `id`
    /// without densifying.
    pub fn accumulate_grad_rows(&mut self, id: ParamId, delta: RowSparse) {
        self.entries[id.0].grad.accumulate(Grad::RowSparse(delta));
    }

    /// Adds an owned dense-or-sparse `delta` (the backward-sweep path).
    pub fn accumulate_grad_owned(&mut self, id: ParamId, delta: Grad) {
        self.entries[id.0].grad.accumulate(delta);
    }

    /// Converts every accumulator to its dense representation (used by the
    /// dense-oracle tests and benchmarks; trainers never need this).
    pub fn densify_grads(&mut self) {
        for e in &mut self.entries {
            if let Grad::RowSparse(s) = &e.grad {
                e.grad = Grad::Dense(s.to_dense());
            }
        }
    }

    /// Resets every gradient accumulator to the empty row-sparse state
    /// (call between optimizer steps). `O(1)` per parameter — no
    /// full-table wipe.
    pub fn zero_grad(&mut self) {
        for e in &mut self.entries {
            e.grad.clear();
        }
    }

    /// Iterates over all parameter handles.
    pub fn ids(&self) -> impl Iterator<Item = ParamId> + '_ {
        (0..self.entries.len()).map(ParamId)
    }

    /// Global L2 norm of all gradients, used for clipping diagnostics.
    /// Touched-rows-only for sparse accumulators.
    #[must_use]
    pub fn grad_norm(&self) -> f64 {
        self.entries
            .iter()
            .map(|e| e.grad.frob_sq())
            .sum::<f64>()
            .sqrt()
    }

    /// Returns `true` when every parameter and gradient is finite.
    #[must_use]
    pub fn all_finite(&self) -> bool {
        self.entries
            .iter()
            .all(|e| e.value.all_finite() && e.grad.all_finite())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_lookup() {
        let mut p = Params::new();
        let a = p.add("a", Tensor::ones(2, 3));
        let b = p.add("b", Tensor::zeros(1, 1));
        assert_eq!(p.len(), 2);
        assert_eq!(p.n_scalars(), 7);
        assert_eq!(p.name(a), "a");
        assert_eq!(p.name(b), "b");
        assert_eq!(p.value(a).sum(), 6.0);
        assert_eq!(p.grad(a).frob_sq(), 0.0);
        assert!(!p.grad(a).is_dense(), "fresh grads start row-sparse");
    }

    #[test]
    fn grad_accumulation_and_zero() {
        let mut p = Params::new();
        let a = p.add("a", Tensor::zeros(2, 2));
        p.accumulate_grad(a, &Tensor::ones(2, 2));
        p.accumulate_grad(a, &Tensor::ones(2, 2));
        assert_eq!(p.grad(a).to_dense().sum(), 8.0);
        assert_eq!(p.grad_norm(), 4.0);
        p.zero_grad();
        assert_eq!(p.grad(a).to_dense().sum(), 0.0);
        assert!(!p.grad(a).is_dense(), "zero_grad resets to sparse");
    }

    #[test]
    fn sparse_accumulation_stays_sparse() {
        let mut p = Params::new();
        let a = p.add("a", Tensor::zeros(4, 2));
        let delta = RowSparse::from_scatter(4, 2, &[1, 3], &Tensor::ones(2, 2));
        p.accumulate_grad_rows(a, delta.clone());
        p.accumulate_grad_rows(a, delta);
        assert!(!p.grad(a).is_dense());
        assert_eq!(p.grad(a).to_dense().row(1), &[2.0, 2.0]);
        assert_eq!(p.grad(a).to_dense().row(0), &[0.0, 0.0]);
        assert_eq!(p.grad_norm(), (4.0 * 4.0_f64).sqrt());
    }

    #[test]
    fn densify_grads_preserves_values() {
        let mut p = Params::new();
        let a = p.add("a", Tensor::zeros(3, 1));
        p.accumulate_grad_rows(a, RowSparse::from_scatter(3, 1, &[2], &Tensor::scalar(5.0)));
        p.densify_grads();
        assert!(p.grad(a).is_dense());
        assert_eq!(p.grad(a).to_dense().data(), &[0.0, 0.0, 5.0]);
    }

    #[test]
    fn grad_and_value_mut_borrows_both_sides() {
        let mut p = Params::new();
        let a = p.add("a", Tensor::ones(1, 2));
        p.accumulate_grad(a, &Tensor::row_vec(&[1.0, 2.0]));
        let (g, w) = p.grad_and_value_mut(a);
        let g = g.to_dense();
        w.axpy(-1.0, &g);
        assert_eq!(p.value(a).data(), &[0.0, -1.0]);
    }

    #[test]
    fn value_mut_copy_on_write() {
        let mut p = Params::new();
        let a = p.add("a", Tensor::zeros(1, 2));
        let shared = p.value_rc(a); // simulate a live graph holding the value
        p.value_mut(a).set(0, 0, 5.0);
        assert_eq!(p.value(a).get(0, 0), 5.0);
        assert_eq!(shared.get(0, 0), 0.0, "old graph must see the old value");
    }

    #[test]
    fn finiteness_check() {
        let mut p = Params::new();
        let a = p.add("a", Tensor::ones(1, 1));
        assert!(p.all_finite());
        p.value_mut(a).set(0, 0, f64::NAN);
        assert!(!p.all_finite());
    }
}
