//! The differentiable-operation vocabulary.

use std::rc::Rc;

use dt_tensor::Tensor;

use crate::graph::Var;
use crate::params::ParamId;

/// One differentiable operation recorded on the tape.
///
/// Backward rules live in [`crate::Graph::backward`]; every rule is verified
/// against central finite differences in the test suite.
#[derive(Clone, Debug)]
pub enum Op {
    /// A leaf tensor; `Some(id)` when it mirrors a parameter in a
    /// [`crate::Params`] store (gradients flow back into the store).
    Leaf(Option<ParamId>),
    /// A constant: no gradient ever flows into it.
    Constant,

    // -- element-wise binary ------------------------------------------------
    /// `a + b` (same shape).
    Add(Var, Var),
    /// `a - b` (same shape).
    Sub(Var, Var),
    /// Hadamard product `a ⊙ b`.
    Mul(Var, Var),
    /// Element-wise quotient `a / b`.
    Div(Var, Var),

    // -- element-wise unary -------------------------------------------------
    /// `-a`.
    Neg(Var),
    /// `a + c` for a compile-time constant `c`.
    AddScalar(Var, f64),
    /// `c · a` for a compile-time constant `c`.
    MulScalar(Var, f64),
    /// `a^p` element-wise (callers must keep the base in `p`'s domain).
    PowConst(Var, f64),
    /// Logistic sigmoid `σ(a)`.
    Sigmoid(Var),
    /// Hyperbolic tangent.
    Tanh(Var),
    /// Rectified linear unit `max(a, 0)`.
    Relu(Var),
    /// `exp(a)`.
    Exp(Var),
    /// Natural logarithm (domain `a > 0`).
    Ln(Var),
    /// `√a` (domain `a ≥ 0`).
    Sqrt(Var),
    /// `a²`.
    Sqr(Var),
    /// `clamp(a, lo, hi)`; gradient passes inside `[lo, hi]`.
    Clamp(Var, f64, f64),

    // -- scalar-variable broadcast -------------------------------------------
    /// `a · s` where `s` is a `1×1` variable.
    MulScalarVar(Var, Var),
    /// `a / s` where `s` is a `1×1` variable.
    DivScalarVar(Var, Var),

    // -- matrix ---------------------------------------------------------------
    /// `A · B`.
    MatMul(Var, Var),
    /// `Aᵀ · B` (Gram-style product without materialised transpose).
    MatMulTN(Var, Var),
    /// `A · Bᵀ`.
    MatMulNT(Var, Var),
    /// `Aᵀ`.
    Transpose(Var),
    /// Row-wise dot product of two `n×k` tensors, producing `n×1`.
    RowDot(Var, Var),

    // -- reductions -------------------------------------------------------------
    /// Sum of all elements (scalar output).
    Sum(Var),
    /// Mean of all elements (scalar output).
    Mean(Var),
    /// Squared Frobenius norm `Σ a²` (scalar output).
    FrobSq(Var),
    /// Per-row sums (`n×1` output).
    RowSums(Var),
    /// Per-column sums (`1×c` output).
    ColSums(Var),

    // -- structural ----------------------------------------------------------------
    /// Row gather (embedding lookup); backward is scatter-add.
    Gather(Var, Rc<Vec<usize>>),
    /// Horizontal concatenation `[a | b]`.
    ConcatCols(Var, Var),
    /// Column slice `a[:, lo..hi]`.
    SliceCols(Var, usize, usize),
    /// `a + bias` where `bias` is `1×c`, broadcast over rows.
    AddRowBroadcast(Var, Var),
    /// `a + bias` where `bias` is `r×1`, broadcast over columns.
    AddColBroadcast(Var, Var),

    // -- gradient control / losses -----------------------------------------------
    /// Identity forward, zero backward (stop-gradient).
    Detach(Var),
    /// Numerically stable element-wise binary cross-entropy with logits:
    /// `max(x,0) − x·t + ln(1 + e^{−|x|})`.
    BceWithLogits(Var, Var),
    /// Fused `mean(bce_with_logits(x, t))` — scalar output computed in one
    /// pass; the cached tensor is the backward residual `σ(x) − t` (one
    /// pooled buffer, recycled when the tape drops).
    SigmoidBceMean(Var, Var, Rc<Tensor>),
    /// Fused IPS-weighted mean BCE `mean(w ⊙ bce_with_logits(x, t))` with
    /// the weights folded into the same pass; fields are `(w, x, t,
    /// residual)` with the same cached residual `σ(x) − t`.
    IpsWeightedBceMean(Var, Var, Var, Rc<Tensor>),
}

/// The input variables of one [`Op`], stored inline. `inputs()` runs for
/// every node pushed onto the tape, so it must not heap-allocate (R10);
/// no op has more than three inputs. Dereferences to `&[Var]`.
#[derive(Debug, Clone, Copy)]
pub struct Inputs {
    vars: [Var; 3],
    len: usize,
}

impl Inputs {
    const EMPTY: Inputs = Inputs {
        vars: [Var::PAD; 3],
        len: 0,
    };

    fn of(vs: &[Var]) -> Inputs {
        let mut out = Inputs::EMPTY;
        for (slot, v) in out.vars.iter_mut().zip(vs) {
            *slot = *v;
        }
        out.len = vs.len().min(out.vars.len());
        out
    }
}

impl std::ops::Deref for Inputs {
    type Target = [Var];

    fn deref(&self) -> &[Var] {
        &self.vars[..self.len]
    }
}

impl Op {
    /// The input variables of this op, in a fixed order.
    #[must_use]
    pub fn inputs(&self) -> Inputs {
        use Op::*;
        match self {
            Leaf(_) | Constant => Inputs::EMPTY,
            Add(a, b)
            | Sub(a, b)
            | Mul(a, b)
            | Div(a, b)
            | MatMul(a, b)
            | MatMulTN(a, b)
            | MatMulNT(a, b)
            | RowDot(a, b)
            | ConcatCols(a, b)
            | AddRowBroadcast(a, b)
            | AddColBroadcast(a, b)
            | BceWithLogits(a, b)
            | MulScalarVar(a, b)
            | DivScalarVar(a, b)
            | SigmoidBceMean(a, b, _) => Inputs::of(&[*a, *b]),
            IpsWeightedBceMean(w, x, t, _) => Inputs::of(&[*w, *x, *t]),
            Neg(a)
            | AddScalar(a, _)
            | MulScalar(a, _)
            | PowConst(a, _)
            | Sigmoid(a)
            | Tanh(a)
            | Relu(a)
            | Exp(a)
            | Ln(a)
            | Sqrt(a)
            | Sqr(a)
            | Clamp(a, _, _)
            | Transpose(a)
            | Sum(a)
            | Mean(a)
            | FrobSq(a)
            | RowSums(a)
            | ColSums(a)
            | Gather(a, _)
            | SliceCols(a, _, _)
            | Detach(a) => Inputs::of(&[*a]),
        }
    }

    /// Returns `true` for ops that block gradient flow to their inputs.
    #[must_use]
    pub fn blocks_gradient(&self) -> bool {
        matches!(self, Op::Detach(_) | Op::Constant | Op::Leaf(_))
    }
}
