//! Property-based tests for the tape: randomized op chains must pass the
//! finite-difference check, and algebraic identities of differentiation
//! must hold.

use dt_autograd::gradcheck::gradcheck;
use dt_autograd::{Graph, Params};
use dt_tensor::Tensor;
use proptest::prelude::*;

/// A small tensor with bounded entries (away from op-domain edges).
fn small_tensor() -> impl Strategy<Value = Tensor> {
    (1usize..4, 1usize..4).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-2.0f64..2.0, r * c)
            .prop_map(move |data| Tensor::from_vec(r, c, data))
    })
}

/// A random chain of smooth unary ops applied elementwise.
#[derive(Debug, Clone)]
enum UnaryOp {
    Sigmoid,
    Tanh,
    Exp,
    Sqr,
    Neg,
    MulScalar(f64),
    AddScalar(f64),
}

fn unary_op() -> impl Strategy<Value = UnaryOp> {
    prop_oneof![
        Just(UnaryOp::Sigmoid),
        Just(UnaryOp::Tanh),
        Just(UnaryOp::Exp),
        Just(UnaryOp::Sqr),
        Just(UnaryOp::Neg),
        (-2.0f64..2.0).prop_map(UnaryOp::MulScalar),
        (-2.0f64..2.0).prop_map(UnaryOp::AddScalar),
    ]
}

fn apply(g: &mut Graph, v: dt_autograd::Var, op: &UnaryOp) -> dt_autograd::Var {
    match op {
        UnaryOp::Sigmoid => g.sigmoid(v),
        UnaryOp::Tanh => g.tanh(v),
        UnaryOp::Exp => g.exp(v),
        UnaryOp::Sqr => g.sqr(v),
        UnaryOp::Neg => g.neg(v),
        UnaryOp::MulScalar(c) => g.mul_scalar(v, *c),
        UnaryOp::AddScalar(c) => g.add_scalar(v, *c),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_unary_chains_pass_gradcheck(
        x in small_tensor(),
        ops in proptest::collection::vec(unary_op(), 1..5),
    ) {
        // Exp chains can explode; clamp the input range via tanh first.
        let reports = gradcheck(&[x], 1e-5, |g, vars| {
            let mut v = g.tanh(vars[0]);
            for op in &ops {
                v = apply(g, v, op);
            }
            g.mean(v)
        });
        prop_assert!(
            reports[0].max_rel_err < 1e-4,
            "rel err {}",
            reports[0].max_rel_err
        );
    }

    #[test]
    fn backward_is_linear_in_the_loss(x in small_tensor()) {
        // d(αL)/dx == α·dL/dx.
        let grad_of = |alpha: f64| -> Tensor {
            let mut g = Graph::new();
            let v = g.leaf(x.clone());
            let s = g.sqr(v);
            let l0 = g.sum(s);
            let l = g.mul_scalar(l0, alpha);
            g.backward_collect(l, &[v]).remove(0)
        };
        let g1 = grad_of(1.0);
        let g3 = grad_of(3.0);
        prop_assert!(g1.scale(3.0).approx_eq(&g3, 1e-10));
    }

    #[test]
    fn gradient_of_sum_decomposes(x in small_tensor()) {
        // dL/dx for L = L1 + L2 equals the sum of individual gradients.
        let grad_of = |which: u8| -> Tensor {
            let mut g = Graph::new();
            let v = g.leaf(x.clone());
            let sq = g.sqr(v);
            let l1 = g.sum(sq);
            let sig = g.sigmoid(v);
            let l2 = g.mean(sig);
            let loss = match which {
                1 => l1,
                2 => l2,
                _ => g.add(l1, l2),
            };
            g.backward_collect(loss, &[v]).remove(0)
        };
        let combined = grad_of(0);
        let sum = grad_of(1).add(&grad_of(2));
        prop_assert!(combined.approx_eq(&sum, 1e-10));
    }

    #[test]
    fn detach_yields_exactly_zero_grad(x in small_tensor()) {
        let mut g = Graph::new();
        let v = g.leaf(x.clone());
        let d = g.detach(v);
        let s = g.sqr(d);
        let l = g.sum(s);
        let grad = g.backward_collect(l, &[v]).remove(0);
        prop_assert_eq!(grad.frob_sq(), 0.0);
    }

    #[test]
    fn params_grad_equals_leaf_grad(x in small_tensor()) {
        // The Params-accumulation path and the collect path agree.
        let mut params = Params::new();
        let id = params.add("x", x.clone());
        let mut g = Graph::new();
        let v = g.param(&params, id);
        let s = g.sigmoid(v);
        let l = g.mean(s);
        let direct = g.backward_collect(l, &[v]).remove(0);
        g.backward(l, &mut params);
        prop_assert!(params.grad(id).to_dense().approx_eq(&direct, 1e-12));
    }

    #[test]
    fn value_is_unchanged_by_backward(x in small_tensor()) {
        let mut g = Graph::new();
        let v = g.leaf(x.clone());
        let s = g.sqr(v);
        let l = g.sum(s);
        let before = g.value(v).clone();
        let _ = g.backward_collect(l, &[v]);
        prop_assert_eq!(g.value(v), &before);
    }
}

/// Strategy: a `(weights, logits, targets)` triple sharing one shape for
/// the fused-loss equivalence properties.
fn bce_triple() -> impl Strategy<Value = (Tensor, Tensor, Tensor)> {
    (1usize..4, 1usize..4).prop_flat_map(|(r, c)| {
        let w = proptest::collection::vec(0.05f64..20.0, r * c);
        let x = proptest::collection::vec(-12.0f64..12.0, r * c);
        let t = proptest::collection::vec(0.0f64..=1.0, r * c);
        (w, x, t).prop_map(move |(w, x, t)| {
            (
                Tensor::from_vec(r, c, w),
                Tensor::from_vec(r, c, x),
                Tensor::from_vec(r, c, t),
            )
        })
    })
}

proptest! {
    #[test]
    fn fused_bce_graph_matches_composed_bits((_w, x, t) in bce_triple()) {
        let run = |composed: bool| {
            let mut g = Graph::new();
            let xv = g.leaf(x.clone());
            let tv = g.constant(t.clone());
            let loss = if composed {
                g.bce_mean_composed(xv, tv)
            } else {
                g.sigmoid_bce_mean(xv, tv)
            };
            let value = g.item(loss);
            let grad = g.backward_collect(loss, &[xv]).remove(0);
            (value, grad)
        };
        let (vf, gf) = run(false);
        let (vc, gc) = run(true);
        prop_assert_eq!(vf.to_bits(), vc.to_bits());
        prop_assert_eq!(gf, gc);
    }

    #[test]
    fn fused_ips_bce_graph_matches_composed_bits((w, x, t) in bce_triple()) {
        let run = |composed: bool| {
            let mut g = Graph::new();
            let wv = g.leaf(w.clone());
            let xv = g.leaf(x.clone());
            let tv = g.constant(t.clone());
            let loss = if composed {
                let elem = g.bce_with_logits(xv, tv);
                g.weighted_mean(wv, elem)
            } else {
                g.ips_weighted_bce_mean(wv, xv, tv)
            };
            let value = g.item(loss);
            let mut grads = g.backward_collect(loss, &[xv, wv]);
            (value, grads.remove(0), grads.remove(0))
        };
        let (vf, gxf, gwf) = run(false);
        let (vc, gxc, gwc) = run(true);
        prop_assert_eq!(vf.to_bits(), vc.to_bits());
        prop_assert_eq!(gxf, gxc);
        prop_assert_eq!(gwf, gwc);
    }

    #[test]
    fn pooled_and_fresh_backward_are_bit_identical((w, x, t) in bce_triple()) {
        let run = || {
            let mut params = Params::new();
            let id = params.add("x", x.clone());
            let mut g = Graph::new();
            let xv = g.param(&params, id);
            let wv = g.constant(w.clone());
            let tv = g.constant(t.clone());
            let loss = g.ips_weighted_bce_mean(wv, xv, tv);
            g.backward(loss, &mut params);
            drop(g);
            params.grad(id).to_dense()
        };
        let pooled = run();
        let fresh = dt_tensor::pool::with_disabled(run);
        prop_assert_eq!(pooled, fresh);
    }
}
