//! Finite-difference verification of every op's backward rule.

use std::rc::Rc;

use dt_autograd::gradcheck::assert_gradcheck;
use dt_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

const TOL: f64 = 1e-5;

fn rng() -> StdRng {
    StdRng::seed_from_u64(0xD15C0)
}

fn randn(r: usize, c: usize, rng: &mut StdRng) -> Tensor {
    dt_tensor::normal(r, c, 0.0, 1.0, rng)
}

#[test]
fn add_sub_mul() {
    let mut r = rng();
    let a = randn(3, 4, &mut r);
    let b = randn(3, 4, &mut r);
    assert_gradcheck(&[a.clone(), b.clone()], TOL, |g, v| {
        let s = g.add(v[0], v[1]);
        g.sum(s)
    });
    assert_gradcheck(&[a.clone(), b.clone()], TOL, |g, v| {
        let s = g.sub(v[0], v[1]);
        g.sum(s)
    });
    assert_gradcheck(&[a, b], TOL, |g, v| {
        let s = g.mul(v[0], v[1]);
        g.sum(s)
    });
}

#[test]
fn div() {
    let mut r = rng();
    let a = randn(2, 3, &mut r);
    // Keep the denominator away from zero.
    let b = randn(2, 3, &mut r).map(|x| x.abs() + 0.5);
    assert_gradcheck(&[a, b], TOL, |g, v| {
        let s = g.div(v[0], v[1]);
        g.sum(s)
    });
}

#[test]
fn unary_elementwise() {
    let mut r = rng();
    let a = randn(3, 3, &mut r);
    assert_gradcheck(std::slice::from_ref(&a), TOL, |g, v| {
        let s = g.neg(v[0]);
        g.sum(s)
    });
    assert_gradcheck(std::slice::from_ref(&a), TOL, |g, v| {
        let s = g.add_scalar(v[0], 3.5);
        g.sum(s)
    });
    assert_gradcheck(std::slice::from_ref(&a), TOL, |g, v| {
        let s = g.mul_scalar(v[0], -2.0);
        g.sum(s)
    });
    assert_gradcheck(std::slice::from_ref(&a), TOL, |g, v| {
        let s = g.sqr(v[0]);
        g.sum(s)
    });
    assert_gradcheck(std::slice::from_ref(&a), TOL, |g, v| {
        let s = g.sigmoid(v[0]);
        g.sum(s)
    });
    assert_gradcheck(std::slice::from_ref(&a), TOL, |g, v| {
        let s = g.tanh(v[0]);
        g.sum(s)
    });
    assert_gradcheck(&[a], TOL, |g, v| {
        let s = g.exp(v[0]);
        g.sum(s)
    });
}

#[test]
fn relu_away_from_kink() {
    let mut r = rng();
    // Shift values away from 0 so finite differences don't straddle the kink.
    let a = randn(3, 3, &mut r).map(|x| if x.abs() < 0.1 { x + 0.2 } else { x });
    assert_gradcheck(&[a], TOL, |g, v| {
        let s = g.relu(v[0]);
        g.sum(s)
    });
}

#[test]
fn positive_domain_ops() {
    let mut r = rng();
    let a = randn(2, 4, &mut r).map(|x| x.abs() + 0.3);
    assert_gradcheck(std::slice::from_ref(&a), TOL, |g, v| {
        let s = g.ln(v[0]);
        g.sum(s)
    });
    assert_gradcheck(std::slice::from_ref(&a), TOL, |g, v| {
        let s = g.sqrt(v[0]);
        g.sum(s)
    });
    assert_gradcheck(&[a], TOL, |g, v| {
        let s = g.pow_const(v[0], 1.7);
        g.sum(s)
    });
}

#[test]
fn clamp_away_from_edges() {
    let mut r = rng();
    let a = randn(3, 3, &mut r).map(|x| {
        // keep each entry at least 0.05 from the clamp edges ±1
        if (x.abs() - 1.0).abs() < 0.05 {
            x * 1.2
        } else {
            x
        }
    });
    assert_gradcheck(&[a], TOL, |g, v| {
        let s = g.clamp(v[0], -1.0, 1.0);
        g.sum(s)
    });
}

#[test]
fn scalar_var_broadcast() {
    let mut r = rng();
    let a = randn(3, 2, &mut r);
    let s = Tensor::scalar(1.7);
    assert_gradcheck(&[a.clone(), s.clone()], TOL, |g, v| {
        let p = g.mul_scalar_var(v[0], v[1]);
        g.sum(p)
    });
    assert_gradcheck(&[a, s], TOL, |g, v| {
        let p = g.div_scalar_var(v[0], v[1]);
        g.sum(p)
    });
}

#[test]
fn matmul_family() {
    let mut r = rng();
    let a = randn(3, 4, &mut r);
    let b = randn(4, 2, &mut r);
    assert_gradcheck(&[a.clone(), b.clone()], TOL, |g, v| {
        let p = g.matmul(v[0], v[1]);
        let sq = g.sqr(p);
        g.sum(sq)
    });
    // TN: shapes n×k1, n×k2
    let c = randn(4, 3, &mut r);
    let d = randn(4, 2, &mut r);
    assert_gradcheck(&[c, d], TOL, |g, v| {
        let p = g.matmul_tn(v[0], v[1]);
        let sq = g.sqr(p);
        g.sum(sq)
    });
    // NT: shapes m×k, n×k
    let e = randn(3, 4, &mut r);
    let f = randn(2, 4, &mut r);
    assert_gradcheck(&[e, f], TOL, |g, v| {
        let p = g.matmul_nt(v[0], v[1]);
        let sq = g.sqr(p);
        g.sum(sq)
    });
}

#[test]
fn transpose_and_row_dot() {
    let mut r = rng();
    let a = randn(3, 4, &mut r);
    assert_gradcheck(std::slice::from_ref(&a), TOL, |g, v| {
        let t = g.transpose(v[0]);
        let sq = g.sqr(t);
        g.sum(sq)
    });
    let b = randn(3, 4, &mut r);
    assert_gradcheck(&[a, b], TOL, |g, v| {
        let d = g.row_dot(v[0], v[1]);
        let sq = g.sqr(d);
        g.sum(sq)
    });
}

#[test]
fn reductions() {
    let mut r = rng();
    let a = randn(3, 5, &mut r);
    assert_gradcheck(std::slice::from_ref(&a), TOL, |g, v| g.sum(v[0]));
    assert_gradcheck(std::slice::from_ref(&a), TOL, |g, v| g.mean(v[0]));
    assert_gradcheck(std::slice::from_ref(&a), TOL, |g, v| g.frob_sq(v[0]));
    assert_gradcheck(std::slice::from_ref(&a), TOL, |g, v| {
        let rs = g.row_sums(v[0]);
        let sq = g.sqr(rs);
        g.sum(sq)
    });
    assert_gradcheck(&[a], TOL, |g, v| {
        let cs = g.col_sums(v[0]);
        let sq = g.sqr(cs);
        g.sum(sq)
    });
}

#[test]
fn gather_with_repeats() {
    let mut r = rng();
    let table = randn(5, 3, &mut r);
    let idx = Rc::new(vec![0, 2, 2, 4, 0]);
    assert_gradcheck(&[table], TOL, move |g, v| {
        let rows = g.gather(v[0], Rc::clone(&idx));
        let sq = g.sqr(rows);
        g.sum(sq)
    });
}

#[test]
fn concat_and_slice() {
    let mut r = rng();
    let a = randn(3, 2, &mut r);
    let b = randn(3, 4, &mut r);
    assert_gradcheck(&[a.clone(), b.clone()], TOL, |g, v| {
        let c = g.concat_cols(v[0], v[1]);
        let sq = g.sqr(c);
        g.sum(sq)
    });
    assert_gradcheck(&[b], TOL, |g, v| {
        let s = g.slice_cols(v[0], 1, 3);
        let sq = g.sqr(s);
        g.sum(sq)
    });
}

#[test]
fn broadcasts() {
    let mut r = rng();
    let a = randn(3, 4, &mut r);
    let row_bias = randn(1, 4, &mut r);
    let col_bias = randn(3, 1, &mut r);
    assert_gradcheck(&[a.clone(), row_bias], TOL, |g, v| {
        let s = g.add_row_broadcast(v[0], v[1]);
        let sq = g.sqr(s);
        g.sum(sq)
    });
    assert_gradcheck(&[a, col_bias], TOL, |g, v| {
        let s = g.add_col_broadcast(v[0], v[1]);
        let sq = g.sqr(s);
        g.sum(sq)
    });
}

#[test]
fn bce_with_logits_both_inputs() {
    let mut r = rng();
    let logits = randn(4, 2, &mut r);
    // soft targets in (0,1) so the target gradient is exercised too
    let targets = randn(4, 2, &mut r).map(|x| 1.0 / (1.0 + (-x).exp()));
    assert_gradcheck(&[logits, targets], TOL, |g, v| {
        let l = g.bce_with_logits(v[0], v[1]);
        g.mean(l)
    });
}

#[test]
fn composite_mf_loss_pipeline() {
    // End-to-end check of a realistic DT-style fragment: gather embeddings,
    // slice primary columns, row-dot prediction, weighted squared error,
    // plus a disentangling penalty.
    let mut r = rng();
    let p = randn(6, 4, &mut r);
    let q = randn(5, 4, &mut r);
    let users = Rc::new(vec![0usize, 3, 5, 1]);
    let items = Rc::new(vec![4usize, 0, 2, 2]);
    let ratings = Tensor::col_vec(&[1.0, 0.0, 1.0, 1.0]);
    let weights = Tensor::col_vec(&[2.0, 1.3, 0.7, 1.0]);

    assert_gradcheck(&[p, q], 1e-4, move |g, v| {
        let pu = g.gather(v[0], Rc::clone(&users));
        let qi = g.gather(v[1], Rc::clone(&items));
        let pu_prim = g.slice_cols(pu, 0, 2);
        let qi_prim = g.slice_cols(qi, 0, 2);
        let logits = g.row_dot(pu_prim, qi_prim);
        let pred = g.sigmoid(logits);
        let rv = g.constant(ratings.clone());
        let wv = g.constant(weights.clone());
        let err = g.squared_error(pred, rv);
        let loss = g.weighted_mean(wv, err);

        let p_prim = g.slice_cols(v[0], 0, 2);
        let p_aux = g.slice_cols(v[0], 2, 4);
        let dis = g.disentangle_penalty(p_prim, p_aux);
        let dis_w = g.mul_scalar(dis, 0.01);
        g.add(loss, dis_w)
    });
}
