//! Property-based tests for the metric implementations.

use dt_metrics::{
    auc, expected_calibration_error, mae, mse, ndcg_at_k, precision_at_k, recall_at_k,
};
use proptest::prelude::*;

/// Scored items: (score in [0,1], binary label), at least one of each class
/// not guaranteed.
fn scored_items() -> impl Strategy<Value = Vec<(f64, f64)>> {
    proptest::collection::vec(
        (0.0f64..1.0, prop_oneof![Just(0.0f64), Just(1.0f64)]),
        1..30,
    )
}

proptest! {
    #[test]
    fn auc_is_bounded(items in scored_items()) {
        let scores: Vec<f64> = items.iter().map(|x| x.0).collect();
        let labels: Vec<f64> = items.iter().map(|x| x.1).collect();
        let v = auc(&scores, &labels);
        prop_assert!((0.0..=1.0).contains(&v));
    }

    #[test]
    fn auc_label_flip_complements(items in scored_items()) {
        let scores: Vec<f64> = items.iter().map(|x| x.0).collect();
        let labels: Vec<f64> = items.iter().map(|x| x.1).collect();
        let n_pos = labels.iter().filter(|&&l| l > 0.5).count();
        // Only meaningful when both classes are present.
        prop_assume!(n_pos > 0 && n_pos < labels.len());
        let flipped: Vec<f64> = labels.iter().map(|l| 1.0 - l).collect();
        let direct = auc(&scores, &labels);
        let flip = auc(&scores, &flipped);
        prop_assert!((direct + flip - 1.0).abs() < 1e-9);
    }

    #[test]
    fn auc_score_negation_complements(items in scored_items()) {
        let scores: Vec<f64> = items.iter().map(|x| x.0).collect();
        let labels: Vec<f64> = items.iter().map(|x| x.1).collect();
        let n_pos = labels.iter().filter(|&&l| l > 0.5).count();
        prop_assume!(n_pos > 0 && n_pos < labels.len());
        let negated: Vec<f64> = scores.iter().map(|s| -s).collect();
        prop_assert!((auc(&scores, &labels) + auc(&negated, &labels) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ranking_metrics_are_bounded(items in scored_items(), k in 1usize..10) {
        for metric in [ndcg_at_k, recall_at_k, precision_at_k] {
            if let Some(v) = metric(&items, k) {
                prop_assert!((0.0..=1.0).contains(&v), "value {v}");
            }
        }
    }

    #[test]
    fn ndcg_none_iff_no_positives(items in scored_items(), k in 1usize..10) {
        let has_pos = items.iter().any(|(_, l)| *l > 0.5);
        prop_assert_eq!(ndcg_at_k(&items, k).is_some(), has_pos);
    }

    #[test]
    fn perfect_order_maximises_ndcg(labels in proptest::collection::vec(
        prop_oneof![Just(0.0f64), Just(1.0f64)], 2..20), k in 1usize..10) {
        prop_assume!(labels.iter().any(|l| *l > 0.5));
        // Score = label: perfect ordering.
        let perfect: Vec<(f64, f64)> = labels.iter().map(|&l| (l, l)).collect();
        prop_assert_eq!(ndcg_at_k(&perfect, k), Some(1.0));
        prop_assert_eq!(recall_at_k(&perfect, k).map(|v| v >= 0.999), Some(true));
    }

    #[test]
    fn mse_dominates_squared_mae(pred in proptest::collection::vec(0.0f64..1.0, 1..40)) {
        let target: Vec<f64> = pred.iter().map(|p| 1.0 - p).collect();
        // Jensen: mae² ≤ mse.
        let m = mae(&pred, &target);
        prop_assert!(m * m <= mse(&pred, &target) + 1e-12);
    }

    #[test]
    fn mse_is_translation_detecting(pred in proptest::collection::vec(0.0f64..1.0, 1..40),
                                    shift in 0.01f64..0.5) {
        let shifted: Vec<f64> = pred.iter().map(|p| p + shift).collect();
        prop_assert!((mse(&shifted, &pred) - shift * shift).abs() < 1e-12);
        prop_assert!((mae(&shifted, &pred) - shift).abs() < 1e-12);
    }

    #[test]
    fn ece_is_bounded_and_zero_when_matched(p in proptest::collection::vec(0.0f64..1.0, 1..60)) {
        let (ece, bins) = expected_calibration_error(&p, &p, 10);
        prop_assert!(ece.abs() < 0.2, "self-calibration within bin width");
        let total: usize = bins.iter().map(|b| b.count).sum();
        prop_assert_eq!(total, p.len());
        // Against constant-zero outcomes, ECE equals the mean prediction.
        let zeros = vec![0.0; p.len()];
        let (ece0, _) = expected_calibration_error(&p, &zeros, 10);
        let mean = p.iter().sum::<f64>() / p.len() as f64;
        prop_assert!((ece0 - mean).abs() < 1e-9);
    }
}
