//! Propensity calibration diagnostics.
//!
//! The identifiability story of the paper is ultimately about whether the
//! *learned propensities* can match the true MNAR propensities. Because the
//! generators in `dt-data` expose oracle propensities, calibration can be
//! measured directly.

/// One bin of a reliability diagram.
#[derive(Debug, Clone, Copy)]
pub struct CalibrationBin {
    /// Mean predicted probability in the bin.
    pub mean_predicted: f64,
    /// Mean observed outcome (or oracle probability) in the bin.
    pub mean_observed: f64,
    /// Number of samples in the bin.
    pub count: usize,
}

/// Expected calibration error over equal-width probability bins; also
/// returns the reliability diagram.
///
/// # Panics
/// Panics on length mismatch, empty input, or `n_bins == 0`.
#[must_use]
pub fn expected_calibration_error(
    predicted: &[f64],
    observed: &[f64],
    n_bins: usize,
) -> (f64, Vec<CalibrationBin>) {
    assert_eq!(predicted.len(), observed.len(), "ece: length mismatch");
    assert!(!predicted.is_empty(), "ece: empty input");
    assert!(n_bins > 0, "ece: need at least one bin");
    let mut sums = vec![(0.0f64, 0.0f64, 0usize); n_bins];
    for (&p, &o) in predicted.iter().zip(observed) {
        let b = ((p * n_bins as f64) as usize).min(n_bins - 1);
        sums[b].0 += p;
        sums[b].1 += o;
        sums[b].2 += 1;
    }
    let n = predicted.len() as f64;
    let mut ece = 0.0;
    let bins: Vec<CalibrationBin> = sums
        .into_iter()
        .filter(|&(_, _, c)| c > 0)
        .map(|(sp, so, c)| {
            let bin = CalibrationBin {
                mean_predicted: sp / c as f64,
                mean_observed: so / c as f64,
                count: c,
            };
            ece += (c as f64 / n) * (bin.mean_predicted - bin.mean_observed).abs();
            bin
        })
        .collect();
    (ece, bins)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfectly_calibrated_is_zero() {
        let p = [0.1, 0.1, 0.9, 0.9];
        let (ece, bins) = expected_calibration_error(&p, &p, 10);
        assert!(ece < 1e-12);
        assert_eq!(bins.len(), 2);
    }

    #[test]
    fn constant_misprediction_is_the_gap() {
        let p = [0.8; 10];
        let o = [0.3; 10];
        let (ece, _) = expected_calibration_error(&p, &o, 5);
        assert!((ece - 0.5).abs() < 1e-12);
    }

    #[test]
    fn bins_partition_all_samples() {
        let p = [0.05, 0.15, 0.55, 0.95, 1.0];
        let o = [0.0, 0.0, 1.0, 1.0, 1.0];
        let (_, bins) = expected_calibration_error(&p, &o, 10);
        assert_eq!(bins.iter().map(|b| b.count).sum::<usize>(), 5);
    }

    #[test]
    fn p_equal_one_lands_in_last_bin() {
        let (_, bins) = expected_calibration_error(&[1.0], &[1.0], 4);
        assert_eq!(bins.len(), 1);
        assert_eq!(bins[0].count, 1);
    }
}
