//! Mergeable cache telemetry counters for the serving-load reports
//! (`BENCH_load.json` schema v2, DESIGN.md section 17).
//!
//! The result-cache stores in `dt-cache` accumulate one
//! [`CacheCounters`] each; the load harness merges per-worker (and
//! per-shard) counters into the run's `LoadReport` exactly like the
//! latency histograms, so hit/miss/stale/evict accounting survives any
//! worker topology.

/// Probe/insert outcome counters of one result-cache store.
///
/// `hits + misses` equals the number of probes; `stale_evictions`
/// counts entries dropped because their index epoch lagged the probing
/// key's (lazy invalidation after a `bump_epoch`), and `evictions`
/// counts CLOCK capacity evictions of live entries.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Probes answered from the store.
    pub hits: u64,
    /// Probes that found no usable entry.
    pub misses: u64,
    /// Entries dropped on probe because their epoch was stale.
    pub stale_evictions: u64,
    /// Live entries displaced by CLOCK second-chance eviction.
    pub evictions: u64,
}

impl CacheCounters {
    /// Element-wise accumulation, for merging per-worker or per-shard
    /// counters into one report.
    pub fn merge(&mut self, other: &CacheCounters) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.stale_evictions += other.stale_evictions;
        self.evictions += other.evictions;
    }

    /// Total probes (hits + misses).
    #[must_use]
    pub fn probes(&self) -> u64 {
        self.hits + self.misses
    }

    /// Fraction of probes answered from the store (0 when never probed).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let probes = self.probes();
        if probes == 0 {
            return 0.0;
        }
        self.hits as f64 / probes as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_accumulates_element_wise() {
        let mut a = CacheCounters {
            hits: 3,
            misses: 1,
            stale_evictions: 2,
            evictions: 5,
        };
        let b = CacheCounters {
            hits: 7,
            misses: 9,
            stale_evictions: 1,
            evictions: 0,
        };
        a.merge(&b);
        assert_eq!(
            a,
            CacheCounters {
                hits: 10,
                misses: 10,
                stale_evictions: 3,
                evictions: 5,
            }
        );
    }

    #[test]
    fn hit_rate_handles_zero_probes() {
        assert_eq!(CacheCounters::default().hit_rate(), 0.0);
        let c = CacheCounters {
            hits: 3,
            misses: 1,
            ..CacheCounters::default()
        };
        assert_eq!(c.probes(), 4);
        assert_eq!(c.hit_rate(), 0.75);
    }
}
