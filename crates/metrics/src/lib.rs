//! # dt-metrics
//!
//! Evaluation metrics used throughout the paper's tables: pointwise errors
//! (MSE, MAE — Table III / Fig. 3), AUC and top-K ranking quality
//! (NDCG@K, Recall@K, Precision@K — Tables IV/V, Fig. 5), and propensity
//! calibration diagnostics for the identifiability experiments.

#![forbid(unsafe_code)]

mod auc;
mod calibration;
mod pointwise;
mod ranking;

pub use auc::auc;
pub use calibration::{expected_calibration_error, CalibrationBin};
pub use pointwise::{mae, mse, rmse};
pub use ranking::{
    evaluate_ranking, ndcg_at_k, precision_at_k, recall_at_k, top_k_overlap, RankingReport,
};
