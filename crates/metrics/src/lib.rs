//! # dt-metrics
//!
//! Evaluation metrics used throughout the paper's tables: pointwise errors
//! (MSE, MAE — Table III / Fig. 3), AUC and top-K ranking quality
//! (NDCG@K, Recall@K, Precision@K — Tables IV/V, Fig. 5), propensity
//! calibration diagnostics for the identifiability experiments, and the
//! log-scale latency [`histogram`] behind the serving-load telemetry
//! (Table VI timing columns, `BENCH_load.json`).

#![forbid(unsafe_code)]

mod auc;
mod calibration;
pub mod counters;
pub mod histogram;
mod pointwise;
mod ranking;

pub use auc::auc;
pub use calibration::{expected_calibration_error, CalibrationBin};
pub use counters::CacheCounters;
pub use histogram::LatencyHistogram;
pub use pointwise::{mae, mse, rmse};
pub use ranking::{
    evaluate_ranking, ndcg_at_k, precision_at_k, recall_at_k, top_k_overlap, RankingReport,
};
