//! Pointwise prediction errors.

/// Mean squared error.
///
/// # Panics
/// Panics on length mismatch or empty input.
#[must_use]
pub fn mse(pred: &[f64], target: &[f64]) -> f64 {
    assert_eq!(pred.len(), target.len(), "mse: length mismatch");
    assert!(!pred.is_empty(), "mse: empty input");
    pred.iter()
        .zip(target)
        .map(|(p, t)| (p - t) * (p - t))
        .sum::<f64>()
        / pred.len() as f64
}

/// Mean absolute error.
///
/// # Panics
/// Panics on length mismatch or empty input.
#[must_use]
pub fn mae(pred: &[f64], target: &[f64]) -> f64 {
    assert_eq!(pred.len(), target.len(), "mae: length mismatch");
    assert!(!pred.is_empty(), "mae: empty input");
    pred.iter()
        .zip(target)
        .map(|(p, t)| (p - t).abs())
        .sum::<f64>()
        / pred.len() as f64
}

/// Root mean squared error.
#[must_use]
pub fn rmse(pred: &[f64], target: &[f64]) -> f64 {
    mse(pred, target).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_values() {
        let p = [1.0, 2.0, 3.0];
        let t = [1.0, 4.0, 2.0];
        assert!((mse(&p, &t) - 5.0 / 3.0).abs() < 1e-12);
        assert!((mae(&p, &t) - 1.0).abs() < 1e-12);
        assert!((rmse(&p, &t) - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn perfect_prediction_is_zero() {
        let p = [0.3, 0.7];
        assert_eq!(mse(&p, &p), 0.0);
        assert_eq!(mae(&p, &p), 0.0);
    }

    #[test]
    fn mse_penalises_outliers_more_than_mae() {
        let p = [0.0, 0.0];
        let t = [0.1, 1.9]; // one outlier
        assert!(mse(&p, &t) > mae(&p, &t));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatch_panics() {
        let _ = mse(&[1.0], &[1.0, 2.0]);
    }
}
