//! Top-K ranking metrics, following the paper's protocol: metrics are
//! computed per user over that user's test items, then averaged over users
//! with at least one relevant test item.
//!
//! The per-user functions ([`ndcg_at_k`] & co.) are the reference
//! implementations: they full-sort each user's items. The dataset-level
//! [`evaluate_ranking`] driver instead groups the log into flat per-user
//! ranges with one counting-sort pass and ranks each range through the
//! shared `dt_tensor::topk` partial-selection kernel — `O(n + K log K)`
//! per user instead of `O(n log n)`, with identical tie-breaking (score
//! descending, then original interaction order), so both paths produce
//! the same report bit for bit.

use dt_data::InteractionLog;
use dt_tensor::topk::{select_top_k, Ranked};

/// Scored test items of one user: `(score, binary_label)`.
type ScoredItems<'a> = &'a [(f64, f64)];

/// NDCG@K over one user's test items with binary relevance.
///
/// Items are ranked by score (descending); DCG sums `1/log2(rank+1)` over
/// relevant items in the top K, IDCG is the DCG of a perfect ordering.
/// Returns `None` when the user has no relevant test item.
#[must_use]
pub fn ndcg_at_k(items: ScoredItems, k: usize) -> Option<f64> {
    let n_pos = items.iter().filter(|(_, l)| *l > 0.5).count();
    if n_pos == 0 || k == 0 {
        return None;
    }
    let mut order: Vec<usize> = (0..items.len()).collect();
    order.sort_by(|&a, &b| items[b].0.total_cmp(&items[a].0));
    let dcg: f64 = order
        .iter()
        .take(k)
        .enumerate()
        .filter(|(_, &i)| items[i].1 > 0.5)
        .map(|(rank0, _)| 1.0 / ((rank0 + 2) as f64).log2())
        .sum();
    let idcg: f64 = (0..n_pos.min(k))
        .map(|rank0| 1.0 / ((rank0 + 2) as f64).log2())
        .sum();
    Some(dcg / idcg)
}

/// Recall@K with the paper's truncated denominator
/// `min(K, |test items of u|)` applied to the positive count.
/// Returns `None` when the user has no relevant test item.
#[must_use]
pub fn recall_at_k(items: ScoredItems, k: usize) -> Option<f64> {
    let n_pos = items.iter().filter(|(_, l)| *l > 0.5).count();
    if n_pos == 0 || k == 0 {
        return None;
    }
    let mut order: Vec<usize> = (0..items.len()).collect();
    order.sort_by(|&a, &b| items[b].0.total_cmp(&items[a].0));
    let hits = order.iter().take(k).filter(|&&i| items[i].1 > 0.5).count();
    Some(hits as f64 / n_pos.min(k) as f64)
}

/// Precision@K: fraction of the top-K that is relevant. Returns `None` when
/// the user has no relevant test item.
#[must_use]
pub fn precision_at_k(items: ScoredItems, k: usize) -> Option<f64> {
    let n_pos = items.iter().filter(|(_, l)| *l > 0.5).count();
    if n_pos == 0 || k == 0 {
        return None;
    }
    let mut order: Vec<usize> = (0..items.len()).collect();
    order.sort_by(|&a, &b| items[b].0.total_cmp(&items[a].0));
    let depth = k.min(items.len());
    let hits = order
        .iter()
        .take(depth)
        .filter(|&&i| items[i].1 > 0.5)
        .count();
    Some(hits as f64 / depth as f64)
}

/// Set overlap@K between two ranked item lists: `|truth ∩ got| /
/// |truth|`. Tie-insensitive by construction — only membership in the
/// two lists matters, never the order within them — which makes it the
/// right fidelity metric for comparing a quantized retrieval against its
/// f64 oracle, where near-ties may legitimately reorder.
///
/// An empty `truth` list yields `1.0` (nothing to retrieve, nothing
/// missed — mirrors the IVF recall convention in `dt-bench`). Lists are
/// item ids, assumed duplicate-free (the contract of a top-K stripe);
/// `got` may have any length, e.g. a deeper or shallower cutoff.
#[must_use]
pub fn top_k_overlap(truth: &[u32], got: &[u32]) -> f64 {
    if truth.is_empty() {
        return 1.0;
    }
    // Top-K lists are short (K ≲ 100), so a quadratic membership scan
    // beats sorting or hashing — and allocates nothing.
    let hits = truth.iter().filter(|t| got.contains(t)).count();
    hits as f64 / truth.len() as f64
}

/// Dataset-level ranking report at a single cutoff.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RankingReport {
    /// Mean NDCG@K over users with a relevant test item.
    pub ndcg: f64,
    /// Mean Recall@K over the same users.
    pub recall: f64,
    /// Mean Precision@K over the same users.
    pub precision: f64,
    /// Number of users contributing to the averages.
    pub n_users: usize,
}

/// Evaluates ranking metrics over a test log given one score per test
/// interaction (aligned with `log.interactions()` order).
///
/// # Panics
/// Panics when `scores.len() != log.len()`.
#[must_use]
pub fn evaluate_ranking(log: &InteractionLog, scores: &[f64], k: usize) -> RankingReport {
    assert_eq!(scores.len(), log.len(), "evaluate_ranking: score mismatch");
    let n_users = log.n_users();

    // Counting-sort group-by: one flat scores/labels array segmented by
    // user, instead of a Vec<Vec<_>> of per-user allocations.
    let mut offsets = vec![0usize; n_users + 1];
    for it in log.interactions() {
        offsets[it.user as usize + 1] += 1;
    }
    for u in 0..n_users {
        offsets[u + 1] += offsets[u];
    }
    let mut cursor = offsets.clone();
    let mut flat_scores = vec![0.0; log.len()];
    let mut flat_labels = vec![0.0; log.len()];
    for (it, &s) in log.interactions().iter().zip(scores) {
        let slot = cursor[it.user as usize];
        cursor[it.user as usize] += 1;
        flat_scores[slot] = s;
        flat_labels[slot] = it.rating;
    }

    // Within a user's range, local ids follow interaction order, so the
    // kernel's (score desc, id asc) tie-break reproduces the reference
    // stable sort exactly.
    let mut top = vec![Ranked::TOMBSTONE; k];
    let (mut nd, mut rc, mut pr, mut n) = (0.0, 0.0, 0.0, 0usize);
    for u in 0..n_users {
        let (lo, hi) = (offsets[u], offsets[u + 1]);
        let labels = &flat_labels[lo..hi];
        let n_pos = labels.iter().filter(|&&l| l > 0.5).count();
        if n_pos == 0 || k == 0 {
            continue;
        }
        let filled = select_top_k(&flat_scores[lo..hi], &[], &mut top);
        let mut hits = 0usize;
        let mut dcg = 0.0;
        for (rank0, r) in top[..filled].iter().enumerate() {
            if labels[r.item as usize] > 0.5 {
                hits += 1;
                dcg += 1.0 / ((rank0 + 2) as f64).log2();
            }
        }
        let idcg: f64 = (0..n_pos.min(k))
            .map(|rank0| 1.0 / ((rank0 + 2) as f64).log2())
            .sum();
        nd += dcg / idcg;
        rc += hits as f64 / n_pos.min(k) as f64;
        // `filled` = min(K, catalog) is exactly the reference's depth.
        pr += hits as f64 / filled as f64;
        n += 1;
    }
    if n == 0 {
        return RankingReport {
            ndcg: 0.0,
            recall: 0.0,
            precision: 0.0,
            n_users: 0,
        };
    }
    RankingReport {
        ndcg: nd / n as f64,
        recall: rc / n as f64,
        precision: pr / n as f64,
        n_users: n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dt_data::Interaction;

    #[test]
    fn perfect_ranking_is_one() {
        let items = [(0.9, 1.0), (0.8, 1.0), (0.2, 0.0), (0.1, 0.0)];
        assert_eq!(ndcg_at_k(&items, 2), Some(1.0));
        assert_eq!(recall_at_k(&items, 2), Some(1.0));
        assert_eq!(precision_at_k(&items, 2), Some(1.0));
    }

    #[test]
    fn worst_ranking_is_zero() {
        let items = [(0.1, 1.0), (0.2, 1.0), (0.8, 0.0), (0.9, 0.0)];
        assert_eq!(ndcg_at_k(&items, 2), Some(0.0));
        assert_eq!(recall_at_k(&items, 2), Some(0.0));
        assert_eq!(precision_at_k(&items, 2), Some(0.0));
    }

    #[test]
    fn ndcg_discounts_by_position() {
        // One relevant item at rank 2 of K=2: DCG = 1/log2(3), IDCG = 1.
        let items = [(0.9, 0.0), (0.8, 1.0), (0.1, 0.0)];
        let expected = 1.0 / 3f64.log2();
        assert!((ndcg_at_k(&items, 2).unwrap() - expected).abs() < 1e-12);
    }

    #[test]
    fn overlap_counts_shared_members_order_free() {
        assert_eq!(top_k_overlap(&[1, 2, 3, 4], &[4, 3, 2, 1]), 1.0);
        assert_eq!(top_k_overlap(&[1, 2, 3, 4], &[1, 2, 9, 8]), 0.5);
        assert_eq!(top_k_overlap(&[1, 2], &[3, 4]), 0.0);
    }

    #[test]
    fn overlap_is_tie_insensitive_and_length_tolerant() {
        // A reordered truth set scores the same.
        let got = [7u32, 5, 6];
        assert_eq!(
            top_k_overlap(&[5, 6, 7], &got),
            top_k_overlap(&[7, 6, 5], &got)
        );
        // `got` deeper than truth: still 1.0 when truth is covered.
        assert_eq!(top_k_overlap(&[5], &[9, 5, 2]), 1.0);
        // `got` shallower: only the covered fraction counts.
        assert_eq!(top_k_overlap(&[5, 9, 11, 13], &[9]), 0.25);
    }

    #[test]
    fn overlap_of_empty_truth_is_one() {
        assert_eq!(top_k_overlap(&[], &[1, 2]), 1.0);
        assert_eq!(top_k_overlap(&[], &[]), 1.0);
        assert_eq!(top_k_overlap(&[1], &[]), 0.0);
    }

    #[test]
    fn no_relevant_items_is_none() {
        let items = [(0.9, 0.0), (0.8, 0.0)];
        assert_eq!(ndcg_at_k(&items, 2), None);
        assert_eq!(recall_at_k(&items, 2), None);
        assert_eq!(precision_at_k(&items, 2), None);
    }

    #[test]
    fn recall_uses_truncated_denominator() {
        // 3 positives, K=2, both slots hit → recall = 2/min(2,3) = 1.
        let items = [(0.9, 1.0), (0.8, 1.0), (0.7, 1.0), (0.1, 0.0)];
        assert_eq!(recall_at_k(&items, 2), Some(1.0));
    }

    #[test]
    fn evaluate_ranking_aggregates_over_users() {
        let mut log = InteractionLog::new(3, 4);
        // user 0: perfect; user 1: worst; user 2: no positives (skipped)
        log.push(Interaction::new(0, 0, 1.0));
        log.push(Interaction::new(0, 1, 0.0));
        log.push(Interaction::new(1, 0, 1.0));
        log.push(Interaction::new(1, 1, 0.0));
        log.push(Interaction::new(2, 0, 0.0));
        let scores = [0.9, 0.1, 0.1, 0.9, 0.5];
        let rep = evaluate_ranking(&log, &scores, 1);
        assert_eq!(rep.n_users, 2);
        assert!((rep.ndcg - 0.5).abs() < 1e-12);
        assert!((rep.recall - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_report_when_no_user_qualifies() {
        let mut log = InteractionLog::new(1, 2);
        log.push(Interaction::new(0, 0, 0.0));
        let rep = evaluate_ranking(&log, &[0.5], 5);
        assert_eq!(rep.n_users, 0);
        assert_eq!(rep.ndcg, 0.0);
    }

    /// The reference aggregation the partial-selection driver replaced:
    /// per-user Vec-of-Vecs grouping composed with the full-sort metrics.
    fn evaluate_by_composition(log: &InteractionLog, scores: &[f64], k: usize) -> RankingReport {
        let mut per_user: Vec<Vec<(f64, f64)>> = vec![Vec::new(); log.n_users()];
        for (it, &s) in log.interactions().iter().zip(scores) {
            per_user[it.user as usize].push((s, it.rating));
        }
        let (mut nd, mut rc, mut pr, mut n) = (0.0, 0.0, 0.0, 0usize);
        for items in &per_user {
            if let (Some(a), Some(b), Some(c)) = (
                ndcg_at_k(items, k),
                recall_at_k(items, k),
                precision_at_k(items, k),
            ) {
                nd += a;
                rc += b;
                pr += c;
                n += 1;
            }
        }
        if n == 0 {
            return RankingReport {
                ndcg: 0.0,
                recall: 0.0,
                precision: 0.0,
                n_users: 0,
            };
        }
        RankingReport {
            ndcg: nd / n as f64,
            recall: rc / n as f64,
            precision: pr / n as f64,
            n_users: n,
        }
    }

    #[test]
    fn flat_driver_matches_per_user_composition() {
        // Deterministic xorshift64* log with heavy score ties (quantized
        // scores) so the tie-break paths are genuinely exercised.
        let mut state = 0xD1CEu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state.wrapping_mul(0x2545_F491_4F6C_DD1D)
        };
        let (n_users, n_items) = (23, 17);
        let mut log = InteractionLog::new(n_users, n_items);
        let mut scores = Vec::new();
        for _ in 0..400 {
            let u = (next() % n_users as u64) as u32;
            let i = (next() % n_items as u64) as u32;
            let rating = f64::from((next() % 2) as u32);
            log.push(Interaction::new(u, i, rating));
            // Quantize to 8 levels: plenty of exact duplicates.
            scores.push((next() % 8) as f64 / 8.0);
        }
        for k in [1, 3, 10, 50] {
            let fast = evaluate_ranking(&log, &scores, k);
            let reference = evaluate_by_composition(&log, &scores, k);
            assert_eq!(fast.n_users, reference.n_users, "k={k}");
            assert_eq!(fast.ndcg.to_bits(), reference.ndcg.to_bits(), "k={k}");
            assert_eq!(fast.recall.to_bits(), reference.recall.to_bits(), "k={k}");
            assert_eq!(
                fast.precision.to_bits(),
                reference.precision.to_bits(),
                "k={k}"
            );
        }
    }
}
