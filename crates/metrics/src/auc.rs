//! Area under the ROC curve.

/// AUC via the rank-sum (Mann–Whitney) formulation, with proper handling of
/// tied scores (ties contribute the average rank).
///
/// Labels are binary (`> 0.5` is positive). Returns `NaN`-free 0.5 when one
/// class is absent, which is the conventional "no information" value.
///
/// # Panics
/// Panics on length mismatch or empty input.
#[must_use]
pub fn auc(scores: &[f64], labels: &[f64]) -> f64 {
    assert_eq!(scores.len(), labels.len(), "auc: length mismatch");
    assert!(!scores.is_empty(), "auc: empty input");
    let n_pos = labels.iter().filter(|&&l| l > 0.5).count();
    let n_neg = labels.len() - n_pos;
    if n_pos == 0 || n_neg == 0 {
        return 0.5;
    }

    // Average ranks with tie correction.
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[a].total_cmp(&scores[b]));
    let mut rank_sum_pos = 0.0;
    let mut i = 0;
    while i < order.len() {
        let mut j = i;
        while j + 1 < order.len() && scores[order[j + 1]] == scores[order[i]] {
            j += 1;
        }
        // 1-based ranks i+1 ..= j+1 share the average rank.
        let avg_rank = (i + 1 + j + 1) as f64 / 2.0;
        for &k in &order[i..=j] {
            if labels[k] > 0.5 {
                rank_sum_pos += avg_rank;
            }
        }
        i = j + 1;
    }
    (rank_sum_pos - (n_pos * (n_pos + 1)) as f64 / 2.0) / (n_pos * n_neg) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_separation() {
        let scores = [0.1, 0.2, 0.8, 0.9];
        let labels = [0.0, 0.0, 1.0, 1.0];
        assert_eq!(auc(&scores, &labels), 1.0);
    }

    #[test]
    fn inverted_separation() {
        let scores = [0.9, 0.8, 0.2, 0.1];
        let labels = [0.0, 0.0, 1.0, 1.0];
        assert_eq!(auc(&scores, &labels), 0.0);
    }

    #[test]
    fn all_tied_scores_give_half() {
        let scores = [0.5; 6];
        let labels = [1.0, 0.0, 1.0, 0.0, 1.0, 0.0];
        assert_eq!(auc(&scores, &labels), 0.5);
    }

    #[test]
    fn single_class_gives_half() {
        assert_eq!(auc(&[0.1, 0.9], &[1.0, 1.0]), 0.5);
        assert_eq!(auc(&[0.1, 0.9], &[0.0, 0.0]), 0.5);
    }

    #[test]
    fn hand_computed_case() {
        // scores: pos {0.8, 0.4}, neg {0.6, 0.2}
        // pairs: (0.8>0.6)=1, (0.8>0.2)=1, (0.4<0.6)=0, (0.4>0.2)=1 → 3/4
        let scores = [0.8, 0.4, 0.6, 0.2];
        let labels = [1.0, 1.0, 0.0, 0.0];
        assert!((auc(&scores, &labels) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn partial_tie_counts_half() {
        // pos 0.5 tied with neg 0.5 → that pair contributes 0.5.
        let scores = [0.5, 0.5, 0.9];
        let labels = [1.0, 0.0, 1.0];
        // pairs: (pos .5 vs neg .5)=0.5, (pos .9 vs neg .5)=1 → 1.5/2
        assert!((auc(&scores, &labels) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn invariant_to_monotone_transform() {
        let scores = [0.11, 0.52, 0.35, 0.97, 0.75];
        let labels = [0.0, 1.0, 0.0, 1.0, 0.0];
        let transformed: Vec<f64> = scores.iter().map(|s| (s * 5.0_f64).exp()).collect();
        assert!((auc(&scores, &labels) - auc(&transformed, &labels)).abs() < 1e-12);
    }
}
