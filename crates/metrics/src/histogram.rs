//! Fixed-bucket log-scale latency histogram for serving telemetry.
//!
//! The load harness (`dt-load`) records one queue-wait and one service
//! latency per query at sustained rates, so the recorder must be O(1),
//! allocation-free, and mergeable across worker threads. This histogram
//! is the classic HDR layout: values (nanoseconds) bucket by their
//! binary exponent with [`SUB`] linear sub-buckets per octave, giving a
//! bounded *relative* error instead of a bounded absolute one — the
//! right trade for latencies spanning microseconds to seconds (the
//! paper's Table VI timing columns span four orders of magnitude for
//! the same reason).
//!
//! ## Precision contract
//!
//! With [`SUB`] = 8 sub-buckets per octave, every bucket's width is at
//! most 1/8 of its lower bound, so any quantile reported from bucket
//! upper bounds is within **12.5 %** of the true sample quantile
//! (values below [`SUB`] are exact — one bucket per integer). Quantile
//! extraction itself is exact *given the bucketing*: the reported value
//! is the upper bound of the bucket holding the rank-`⌈qN⌉` sample,
//! never an interpolation.
//!
//! Counters are plain `u64`s in a fixed array: `merge` is element-wise
//! addition, so per-worker histograms combine into a process view
//! without locks, and the merged quantiles equal the quantiles of the
//! concatenated sample stream by construction.

/// Log2 of the sub-buckets per octave.
const SUB_BITS: u32 = 3;

/// Linear sub-buckets per octave: bucket width ≤ lower bound / SUB.
pub const SUB: usize = 1 << SUB_BITS;

/// Total buckets: one per value below [`SUB`], then [`SUB`] per octave
/// for the remaining `64 - SUB_BITS` leading-bit positions of a `u64`.
pub const N_BUCKETS: usize = SUB + (64 - SUB_BITS as usize) * SUB;

/// Bucket index of a nanosecond value (monotone in `v`).
#[inline]
#[must_use]
fn bucket_of(v: u64) -> usize {
    if v < SUB as u64 {
        return v as usize;
    }
    let exp = 63 - v.leading_zeros();
    let frac = ((v >> (exp - SUB_BITS)) & (SUB as u64 - 1)) as usize;
    let block = (exp - SUB_BITS) as usize + 1;
    block * SUB + frac
}

/// Largest value mapping to bucket `i` — the bound quantiles report.
#[inline]
#[must_use]
fn bucket_upper(i: usize) -> u64 {
    if i < SUB {
        return i as u64;
    }
    let block = i / SUB;
    let pos = (i % SUB) as u64;
    let shift = (block - 1) as u32;
    // Lower bound (SUB + pos) << shift, width 1 << shift. The width is
    // parenthesised first: the top bucket's upper bound is u64::MAX and
    // adding before subtracting would overflow.
    ((SUB as u64 + pos) << shift) + ((1u64 << shift) - 1)
}

/// A mergeable log-scale histogram of `u64` samples (nanoseconds by
/// convention). See the module docs for the precision contract.
#[derive(Clone)]
pub struct LatencyHistogram {
    counts: [u64; N_BUCKETS],
    count: u64,
    /// Saturating sum of recorded values, for [`LatencyHistogram::mean`].
    sum: u128,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LatencyHistogram")
            .field("count", &self.count)
            .field("max", &self.max)
            .finish_non_exhaustive()
    }
}

impl LatencyHistogram {
    /// An empty histogram. The bucket array lives inline (no heap), so
    /// construction is allocation-free and per-worker instances are
    /// cheap.
    #[must_use]
    pub fn new() -> Self {
        Self {
            counts: [0; N_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Records one sample in O(1).
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_of(v)] += 1;
        self.count += 1;
        self.sum += u128::from(v);
        self.max = self.max.max(v);
    }

    /// Records a [`std::time::Duration`] as saturating nanoseconds.
    #[inline]
    pub fn record_duration(&mut self, d: std::time::Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Adds every bucket of `other` into `self`. Quantiles of the merge
    /// equal quantiles of the concatenated streams (same fixed buckets).
    pub fn merge(&mut self, other: &Self) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact mean of the recorded samples (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        // Sums of u64 samples fit f64 to ~2^53 ns total; fine for means.
        self.sum as f64 / self.count as f64
    }

    /// Largest recorded sample, exact (0 when empty).
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) as a bucket upper bound: the
    /// smallest bucket bound `B` such that at least `⌈q·N⌉` samples are
    /// ≤ its bucket — within 12.5 % of the true sample quantile (module
    /// docs). Returns 0 for an empty histogram. `q` is clamped.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // ceil(q * count), at least rank 1 so q=0.0 reports the min bucket.
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return bucket_upper(i);
            }
        }
        bucket_upper(N_BUCKETS - 1)
    }

    /// `quantile` in fractional milliseconds, the reporting unit of the
    /// bench artefacts.
    #[must_use]
    pub fn quantile_ms(&self, q: f64) -> f64 {
        self.quantile(q) as f64 / 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        // One bucket per integer below SUB.
        for v in 0..SUB as u64 {
            assert_eq!(bucket_of(v), v as usize);
            assert_eq!(bucket_upper(v as usize), v);
        }
    }

    #[test]
    fn bucket_layout_published_vectors() {
        // Hand-computed (SUB = 8): 8 → first octave bucket, 500 →
        // exp 8, frac (500 >> 5) & 7 = 7, block 6 → index 55 with
        // bounds [480, 511].
        assert_eq!(bucket_of(8), 8);
        assert_eq!(bucket_of(15), 15);
        assert_eq!(bucket_of(16), 16);
        assert_eq!(bucket_of(500), 55);
        assert_eq!(bucket_upper(55), 511);
        assert_eq!(bucket_of(511), 55);
        assert_eq!(bucket_of(512), 56);
        assert_eq!(bucket_of(u64::MAX), N_BUCKETS - 1);
        assert_eq!(bucket_upper(N_BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn buckets_are_monotone_and_contiguous() {
        // Every bucket's upper bound maps back to the bucket, and the
        // next value starts the next bucket — no gaps, no overlaps.
        for i in 0..N_BUCKETS - 1 {
            let hi = bucket_upper(i);
            assert_eq!(bucket_of(hi), i, "upper({i})");
            assert_eq!(bucket_of(hi + 1), i + 1, "upper({i})+1");
        }
    }

    #[test]
    fn relative_error_is_bounded() {
        // Bucket width / lower bound ≤ 1/SUB for all log buckets.
        for i in SUB..N_BUCKETS {
            let hi = bucket_upper(i);
            let lo = bucket_upper(i - 1) + 1;
            let width = hi - lo + 1;
            assert!(
                (width as f64) <= (lo as f64) / SUB as f64 + 1.0,
                "bucket {i}: [{lo}, {hi}] too wide"
            );
        }
    }

    #[test]
    fn quantiles_of_a_known_stream() {
        // 1..=1000: the rank-500 sample is 500 (bucket [480, 511]),
        // the rank-990 sample is 990 (bucket [960, 1023]).
        let mut h = LatencyHistogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.quantile(0.5), 511);
        assert_eq!(h.quantile(0.99), 1023);
        assert_eq!(h.quantile(1.0), 1023);
        assert_eq!(h.quantile(0.0), 1); // min sample's bucket
        assert_eq!(h.max(), 1000);
        assert!((h.mean() - 500.5).abs() < 1e-9);
    }

    #[test]
    fn quantile_is_within_the_precision_contract() {
        // Deterministic pseudo-stream spanning five decades.
        let mut h = LatencyHistogram::new();
        let mut samples = Vec::new();
        let mut state = 0x1234_5678_9ABC_DEF0u64;
        for _ in 0..10_000 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let v = 100 + state % 10_000_000;
            samples.push(v);
            h.record(v);
        }
        samples.sort_unstable();
        for q in [0.5, 0.9, 0.99] {
            let rank = ((q * samples.len() as f64).ceil() as usize).max(1);
            let truth = samples[rank - 1] as f64;
            let got = h.quantile(q) as f64;
            assert!(
                got >= truth && got <= truth * (1.0 + 1.0 / SUB as f64) + 1.0,
                "q={q}: got {got}, truth {truth}"
            );
        }
    }

    #[test]
    fn merge_equals_concatenation() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut whole = LatencyHistogram::new();
        for v in 0..5_000u64 {
            let x = (v * 2_654_435_761) % 1_000_000;
            if v % 2 == 0 {
                a.record(x);
            } else {
                b.record(x);
            }
            whole.record(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert_eq!(a.max(), whole.max());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        for q in [0.0, 0.1, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(a.quantile(q), whole.quantile(q), "q={q}");
        }
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.99), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn durations_record_as_nanos() {
        let mut h = LatencyHistogram::new();
        h.record_duration(std::time::Duration::from_micros(3));
        assert_eq!(h.count(), 1);
        assert_eq!(h.quantile(1.0), bucket_upper(bucket_of(3_000)));
    }
}
