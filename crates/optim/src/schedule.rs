//! Learning-rate schedules.

/// A learning-rate schedule: maps an epoch index to a multiplier applied to
/// the optimizer's base learning rate.
pub trait LrSchedule {
    /// The learning rate to use at `epoch` (0-based), given the base rate.
    fn lr_at(&self, epoch: usize, base_lr: f64) -> f64;
}

/// Constant learning rate.
#[derive(Debug, Clone, Copy, Default)]
pub struct ConstantLr;

impl LrSchedule for ConstantLr {
    fn lr_at(&self, _epoch: usize, base_lr: f64) -> f64 {
        base_lr
    }
}

/// Multiplies the rate by `gamma` every `step_size` epochs.
#[derive(Debug, Clone, Copy)]
pub struct StepDecay {
    /// Number of epochs between decays.
    pub step_size: usize,
    /// Multiplicative decay factor.
    pub gamma: f64,
}

impl LrSchedule for StepDecay {
    fn lr_at(&self, epoch: usize, base_lr: f64) -> f64 {
        base_lr * self.gamma.powi((epoch / self.step_size) as i32)
    }
}

/// Smooth exponential decay `lr · gamma^epoch`.
#[derive(Debug, Clone, Copy)]
pub struct ExponentialDecay {
    /// Per-epoch decay factor in `(0, 1]`.
    pub gamma: f64,
}

impl LrSchedule for ExponentialDecay {
    fn lr_at(&self, epoch: usize, base_lr: f64) -> f64 {
        base_lr * self.gamma.powi(epoch as i32)
    }
}

/// Cosine annealing from the base rate down to `min_lr` over `total_epochs`.
#[derive(Debug, Clone, Copy)]
pub struct CosineLr {
    /// Length of the annealing window.
    pub total_epochs: usize,
    /// Floor learning rate.
    pub min_lr: f64,
}

impl LrSchedule for CosineLr {
    fn lr_at(&self, epoch: usize, base_lr: f64) -> f64 {
        if self.total_epochs == 0 {
            return base_lr;
        }
        let t = (epoch.min(self.total_epochs)) as f64 / self.total_epochs as f64;
        self.min_lr + 0.5 * (base_lr - self.min_lr) * (1.0 + (std::f64::consts::PI * t).cos())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_constant() {
        assert_eq!(ConstantLr.lr_at(0, 0.1), 0.1);
        assert_eq!(ConstantLr.lr_at(999, 0.1), 0.1);
    }

    #[test]
    fn step_decay_steps() {
        let s = StepDecay {
            step_size: 10,
            gamma: 0.5,
        };
        assert_eq!(s.lr_at(0, 1.0), 1.0);
        assert_eq!(s.lr_at(9, 1.0), 1.0);
        assert_eq!(s.lr_at(10, 1.0), 0.5);
        assert_eq!(s.lr_at(25, 1.0), 0.25);
    }

    #[test]
    fn exponential_decay_is_monotone() {
        let s = ExponentialDecay { gamma: 0.9 };
        let mut prev = f64::INFINITY;
        for e in 0..20 {
            let lr = s.lr_at(e, 1.0);
            assert!(lr < prev);
            prev = lr;
        }
    }

    #[test]
    fn cosine_hits_endpoints() {
        let s = CosineLr {
            total_epochs: 100,
            min_lr: 0.001,
        };
        assert!((s.lr_at(0, 0.1) - 0.1).abs() < 1e-12);
        assert!((s.lr_at(100, 0.1) - 0.001).abs() < 1e-12);
        assert!((s.lr_at(200, 0.1) - 0.001).abs() < 1e-12, "clamps past end");
        // Midpoint is the average of the endpoints.
        assert!((s.lr_at(50, 0.1) - 0.0505).abs() < 1e-9);
    }
}
