//! Legacy dense optimizer step formulas — the oracle the sparse-aware
//! optimizers are tested against.
//!
//! Each function reproduces, operation for operation, the pre-row-sparse
//! implementation of the corresponding optimizer (clone the gradient, fold
//! L2 decay in with `axpy`, decay the moments with `scale_inplace`, divide
//! by the bias corrections inside `zip_map`, …). Keeping the old multi-pass
//! formulas verbatim means the `GradMode::DenseEquivalent` path — and the
//! exact-match tests in `crates/optim/tests` — compare against the same
//! bits the workspace produced before gradients became sparse.

use dt_tensor::Tensor;

/// Hyper-parameters of a dense Adam/AdamW step.
pub struct AdamCfg {
    /// Base learning rate.
    pub lr: f64,
    /// First-moment decay.
    pub beta1: f64,
    /// Second-moment decay.
    pub beta2: f64,
    /// Denominator fuzz.
    pub eps: f64,
    /// L2 (coupled) or decoupled decay coefficient.
    pub weight_decay: f64,
    /// `true` for AdamW (decay applied to the weights, not the gradient).
    pub decoupled_decay: bool,
}

/// One dense Adam/AdamW update on a single parameter, using the global step
/// counter `t` (1-based, already incremented) for bias correction.
///
/// # Panics
/// Panics on shape mismatches between the operands.
#[allow(clippy::cast_precision_loss)]
pub fn adam_step(
    w: &mut Tensor,
    grad: &Tensor,
    m: &mut Tensor,
    v: &mut Tensor,
    t: u64,
    cfg: &AdamCfg,
) {
    let tf = t as f64;
    let bc1 = 1.0 - cfg.beta1.powf(tf);
    let bc2 = 1.0 - cfg.beta2.powf(tf);

    let mut g = grad.clone();
    if cfg.weight_decay > 0.0 && !cfg.decoupled_decay {
        g.axpy(cfg.weight_decay, w);
    }

    m.scale_inplace(cfg.beta1);
    m.axpy(1.0 - cfg.beta1, &g);

    v.scale_inplace(cfg.beta2);
    let g_sq = g.map(|x| x * x);
    v.axpy(1.0 - cfg.beta2, &g_sq);

    let lr = cfg.lr;
    let eps = cfg.eps;
    let update = m.zip_map(v, |mv, vv| {
        let m_hat = mv / bc1;
        let v_hat = vv / bc2;
        lr * m_hat / (v_hat.sqrt() + eps)
    });

    if cfg.weight_decay > 0.0 && cfg.decoupled_decay {
        w.scale_inplace(1.0 - cfg.lr * cfg.weight_decay);
    }
    w.axpy(-1.0, &update);
}

/// One dense SGD update: `w ← w − lr · (g + weight_decay · w)`, with
/// classical momentum `v ← µ·v + g` when `velocity` is provided.
///
/// # Panics
/// Panics on shape mismatches between the operands.
pub fn sgd_step(
    w: &mut Tensor,
    grad: &Tensor,
    velocity: Option<&mut Tensor>,
    lr: f64,
    momentum: f64,
    weight_decay: f64,
) {
    let mut g = grad.clone();
    if weight_decay > 0.0 {
        g.axpy(weight_decay, w);
    }
    if let Some(v) = velocity {
        v.scale_inplace(momentum);
        v.add_assign(&g);
        w.axpy(-lr, v);
    } else {
        w.axpy(-lr, &g);
    }
}

/// One dense Adagrad update: `acc ← acc + g²`,
/// `w ← w − lr · g / (√acc + eps)`.
///
/// # Panics
/// Panics on shape mismatches between the operands.
pub fn adagrad_step(w: &mut Tensor, grad: &Tensor, accum: &mut Tensor, lr: f64, eps: f64) {
    let g_sq = grad.map(|x| x * x);
    accum.add_assign(&g_sq);
    let update = grad.zip_map(accum, |gv, av| lr * gv / (av.sqrt() + eps));
    w.axpy(-1.0, &update);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adam_first_step_is_lr_sized() {
        let mut w = Tensor::scalar(10.0);
        let mut m = Tensor::zeros(1, 1);
        let mut v = Tensor::zeros(1, 1);
        let cfg = AdamCfg {
            lr: 0.1,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            decoupled_decay: false,
        };
        adam_step(&mut w, &Tensor::scalar(123.0), &mut m, &mut v, 1, &cfg);
        assert!((w.item() - 9.9).abs() < 1e-6);
    }

    #[test]
    fn sgd_plain_step() {
        let mut w = Tensor::row_vec(&[1.0, 2.0]);
        sgd_step(&mut w, &Tensor::row_vec(&[1.0, -1.0]), None, 0.5, 0.0, 0.0);
        assert_eq!(w.data(), &[0.5, 2.5]);
    }

    #[test]
    fn adagrad_accumulates() {
        let mut w = Tensor::scalar(1.0);
        let mut acc = Tensor::zeros(1, 1);
        adagrad_step(&mut w, &Tensor::scalar(2.0), &mut acc, 0.1, 0.0);
        assert_eq!(acc.item(), 4.0);
        assert!((w.item() - (1.0 - 0.1)).abs() < 1e-12);
    }
}
