//! Global-norm gradient clipping.

use dt_autograd::Params;

/// Scales all gradients so their global L2 norm does not exceed `max_norm`.
/// Returns the pre-clipping norm (useful for divergence diagnostics).
///
/// # Panics
/// Panics when `max_norm` is not positive.
pub fn clip_grad_norm(params: &mut Params, max_norm: f64) -> f64 {
    assert!(max_norm > 0.0, "clip_grad_norm: max_norm must be positive");
    let norm = params.grad_norm();
    if norm > max_norm && norm.is_finite() {
        let scale = max_norm / norm;
        for id in params.ids().collect::<Vec<_>>() {
            params.grad_mut(id).scale_inplace(scale);
        }
    }
    norm
}

#[cfg(test)]
mod tests {
    use super::*;
    use dt_tensor::Tensor;

    #[test]
    fn clips_large_gradients() {
        let mut p = Params::new();
        let a = p.add("a", Tensor::zeros(1, 2));
        p.accumulate_grad(a, &Tensor::row_vec(&[3.0, 4.0])); // norm 5
        let pre = clip_grad_norm(&mut p, 1.0);
        assert_eq!(pre, 5.0);
        assert!((p.grad_norm() - 1.0).abs() < 1e-12);
        // Direction preserved.
        let g = p.grad(a).to_dense();
        assert!((g.get(0, 0) / g.get(0, 1) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn leaves_small_gradients_alone() {
        let mut p = Params::new();
        let a = p.add("a", Tensor::zeros(1, 2));
        p.accumulate_grad(a, &Tensor::row_vec(&[0.3, 0.4]));
        let pre = clip_grad_norm(&mut p, 1.0);
        assert!((pre - 0.5).abs() < 1e-12);
        assert_eq!(p.grad(a).to_dense().data(), &[0.3, 0.4]);
    }

    #[test]
    fn spans_multiple_params() {
        let mut p = Params::new();
        let a = p.add("a", Tensor::zeros(1, 1));
        let b = p.add("b", Tensor::zeros(1, 1));
        p.accumulate_grad(a, &Tensor::scalar(3.0));
        p.accumulate_grad(b, &Tensor::scalar(4.0));
        clip_grad_norm(&mut p, 1.0);
        assert!((p.grad_norm() - 1.0).abs() < 1e-12);
    }
}
