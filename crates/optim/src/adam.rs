//! Adam and AdamW, sparse-aware.
//!
//! The default [`GradMode::Lazy`] consumes row-sparse gradients without
//! densifying: only the touched rows of the parameter, its first moment and
//! its second moment are read or written, with a `β^Δt` catch-up applied to
//! the moments of a row that sat idle for `Δt` steps (the exponent is the
//! number of missed steps, computed from a per-row `last` stamp). Dense
//! gradients — full-table losses — still update every row through a fused
//! single-pass kernel that reads the gradient in place rather than cloning
//! it, with the `1/(1-β^t)` bias corrections folded into one precomputed
//! per-step scale.
//!
//! Documented lazy approximations (see DESIGN.md §10): weight decay — both
//! coupled L2 and AdamW's decoupled form — only acts on rows the current
//! gradient touches, and idle rows receive no updates from their decayed
//! momentum tail. [`GradMode::DenseEquivalent`] removes all approximations
//! by delegating to [`crate::reference::adam_step`].

use std::collections::HashMap;

use dt_autograd::{ParamId, Params};
use dt_tensor::{Grad, Tensor};

use crate::{catchup_pow, reference, GradMode, Optimizer};

/// Per-parameter Adam state: dense moments plus the step stamp of each
/// row's most recent update (for lazy catch-up).
struct State {
    m: Tensor,
    v: Tensor,
    last: Vec<u64>,
}

/// Adam (Kingma & Ba, 2015) — the optimizer the paper uses for all methods.
///
/// `decoupled_decay = false` gives classic Adam with L2 regularisation folded
/// into the gradient; `true` gives AdamW (decay applied directly to the
/// weights).
pub struct Adam {
    lr: f64,
    beta1: f64,
    beta2: f64,
    eps: f64,
    weight_decay: f64,
    decoupled_decay: bool,
    mode: GradMode,
    t: u64,
    state: HashMap<ParamId, State>,
}

impl Adam {
    /// Adam with standard betas `(0.9, 0.999)` and `eps = 1e-8`.
    #[must_use]
    pub fn new(lr: f64) -> Self {
        Self::with_config(lr, 0.9, 0.999, 1e-8, 0.0)
    }

    /// Fully configured classic Adam.
    ///
    /// # Panics
    /// Panics on out-of-range hyper-parameters.
    #[must_use]
    pub fn with_config(lr: f64, beta1: f64, beta2: f64, eps: f64, weight_decay: f64) -> Self {
        assert!(lr > 0.0, "Adam: lr must be positive, got {lr}");
        assert!((0.0..1.0).contains(&beta1), "Adam: beta1 out of range");
        assert!((0.0..1.0).contains(&beta2), "Adam: beta2 out of range");
        assert!(eps > 0.0, "Adam: eps must be positive");
        assert!(weight_decay >= 0.0, "Adam: negative weight_decay");
        Self {
            lr,
            beta1,
            beta2,
            eps,
            weight_decay,
            decoupled_decay: false,
            mode: GradMode::Lazy,
            t: 0,
            state: HashMap::new(),
        }
    }

    /// Selects how row-sparse gradients are consumed (default
    /// [`GradMode::Lazy`]).
    #[must_use]
    pub fn with_grad_mode(mut self, mode: GradMode) -> Self {
        self.mode = mode;
        self
    }
}

/// AdamW: Adam with decoupled weight decay.
pub struct AdamW(Adam);

impl AdamW {
    /// AdamW with standard betas and the given decay.
    #[must_use]
    pub fn new(lr: f64, weight_decay: f64) -> Self {
        let mut inner = Adam::with_config(lr, 0.9, 0.999, 1e-8, weight_decay);
        inner.decoupled_decay = true;
        Self(inner)
    }

    /// Selects how row-sparse gradients are consumed (default
    /// [`GradMode::Lazy`]).
    #[must_use]
    pub fn with_grad_mode(mut self, mode: GradMode) -> Self {
        self.0.mode = mode;
        self
    }
}

impl Optimizer for AdamW {
    fn step(&mut self, params: &mut Params) {
        self.0.step(params);
    }
    fn learning_rate(&self) -> f64 {
        self.0.learning_rate()
    }
    fn set_learning_rate(&mut self, lr: f64) {
        self.0.set_learning_rate(lr);
    }
}

impl Optimizer for Adam {
    #[allow(clippy::too_many_lines)]
    fn step(&mut self, params: &mut Params) {
        self.t += 1;
        let t = self.t;
        let (lr, b1, b2, eps) = (self.lr, self.beta1, self.beta2, self.eps);
        let (wd, decoupled) = (self.weight_decay, self.decoupled_decay);
        // Bias corrections depend only on the global step, so the dense
        // update `lr·(m/bc1)/(√(v/bc2)+eps)` folds into one scale and one
        // shifted eps, computed once per step instead of per element.
        let bc1 = 1.0 - catchup_pow(b1, t);
        let bc2 = 1.0 - catchup_pow(b2, t);
        let scale = lr * bc2.sqrt() / bc1;
        let eps2 = eps * bc2.sqrt();

        let ids: Vec<ParamId> = params.ids().collect();
        for id in ids {
            let (rows, cols) = {
                let val = params.value(id);
                (val.rows(), val.cols())
            };
            let st = self.state.entry(id).or_insert_with(|| State {
                m: Tensor::zeros(rows, cols),
                v: Tensor::zeros(rows, cols),
                last: vec![t - 1; rows],
            });

            if self.mode == GradMode::DenseEquivalent {
                let g = params.grad(id).to_dense();
                let cfg = reference::AdamCfg {
                    lr,
                    beta1: b1,
                    beta2: b2,
                    eps,
                    weight_decay: wd,
                    decoupled_decay: decoupled,
                };
                reference::adam_step(params.value_mut(id), &g, &mut st.m, &mut st.v, t, &cfg);
                continue;
            }

            let (g, w) = params.grad_and_value_mut(id);
            let State { m, v, last } = st;
            match g {
                Grad::RowSparse(s) => {
                    for (k, &r) in s.indices().iter().enumerate() {
                        let idle = t - 1 - last[r];
                        if idle > 0 {
                            let d1 = catchup_pow(b1, idle);
                            let d2 = catchup_pow(b2, idle);
                            for x in m.row_mut(r).iter_mut() {
                                *x *= d1;
                            }
                            for x in v.row_mut(r).iter_mut() {
                                *x *= d2;
                            }
                        }
                        last[r] = t;

                        let grow = s.block().row(k);
                        let wrow = w.row_mut(r);
                        let mrow = m.row_mut(r);
                        let vrow = v.row_mut(r);
                        if decoupled && wd > 0.0 {
                            let decay = 1.0 - lr * wd;
                            for x in wrow.iter_mut() {
                                *x *= decay;
                            }
                        }
                        for j in 0..cols {
                            let mut gi = grow[j];
                            if wd > 0.0 && !decoupled {
                                gi += wd * wrow[j];
                            }
                            mrow[j] = b1 * mrow[j] + (1.0 - b1) * gi;
                            vrow[j] = b2 * vrow[j] + (1.0 - b2) * gi * gi;
                            wrow[j] -= scale * mrow[j] / (vrow[j].sqrt() + eps2);
                        }
                    }
                }
                Grad::Dense(gd) => {
                    // Rows may carry different stamps after a run of sparse
                    // steps: catch each one up before the fused pass.
                    for (r, stamp) in last.iter_mut().enumerate() {
                        let idle = t - 1 - *stamp;
                        if idle > 0 {
                            let d1 = catchup_pow(b1, idle);
                            let d2 = catchup_pow(b2, idle);
                            for x in m.row_mut(r).iter_mut() {
                                *x *= d1;
                            }
                            for x in v.row_mut(r).iter_mut() {
                                *x *= d2;
                            }
                        }
                        *stamp = t;
                    }
                    let gdata = gd.data();
                    let wdata = w.data_mut();
                    let mdata = m.data_mut();
                    let vdata = v.data_mut();
                    let decay = if decoupled && wd > 0.0 {
                        1.0 - lr * wd
                    } else {
                        1.0
                    };
                    for j in 0..rows * cols {
                        let mut gi = gdata[j];
                        if wd > 0.0 && !decoupled {
                            gi += wd * wdata[j];
                        }
                        mdata[j] = b1 * mdata[j] + (1.0 - b1) * gi;
                        vdata[j] = b2 * vdata[j] + (1.0 - b2) * gi * gi;
                        wdata[j] = decay * wdata[j] - scale * mdata[j] / (vdata[j].sqrt() + eps2);
                    }
                }
            }
        }
    }

    fn learning_rate(&self) -> f64 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f64) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dt_autograd::Graph;
    use dt_tensor::RowSparse;

    #[test]
    fn converges_on_rosenbrock_like_quadratic() {
        let mut params = Params::new();
        let w = params.add("w", Tensor::row_vec(&[3.0, -2.0]));
        let target = Tensor::row_vec(&[1.0, 1.0]);
        let mut opt = Adam::new(0.05);
        for _ in 0..2000 {
            let mut g = Graph::new();
            let wv = g.param(&params, w);
            let tv = g.constant(target.clone());
            let loss = g.mse(wv, tv);
            g.backward(loss, &mut params);
            opt.step(&mut params);
            params.zero_grad();
        }
        assert!(params.value(w).sub(&target).frob_sq() < 1e-8);
    }

    #[test]
    fn first_step_size_is_lr() {
        // With bias correction, the very first Adam update has magnitude ≈ lr.
        let mut params = Params::new();
        let w = params.add("w", Tensor::scalar(10.0));
        params.accumulate_grad(w, &Tensor::scalar(123.0));
        let mut opt = Adam::new(0.1);
        opt.step(&mut params);
        assert!((params.value(w).item() - (10.0 - 0.1)).abs() < 1e-6);
    }

    #[test]
    fn adamw_decays_with_dense_zero_gradient() {
        // A dense (all-zero) gradient takes the full-table path, where
        // decoupled decay shrinks every weight exactly like legacy AdamW.
        let mut params = Params::new();
        let w = params.add("w", Tensor::scalar(1.0));
        params.accumulate_grad(w, &Tensor::zeros(1, 1));
        let mut opt = AdamW::new(0.01, 0.1);
        opt.step(&mut params);
        assert!(params.value(w).item() < 1.0);
    }

    #[test]
    fn lazy_untouched_param_does_not_move() {
        // Documented lazy semantics: with an empty row-sparse gradient no
        // row is touched, so neither the weights nor the decay move — decay
        // is applied per touched row, not per step.
        let mut params = Params::new();
        let w = params.add("w", Tensor::scalar(1.0));
        let mut opt = AdamW::new(0.01, 0.1);
        opt.step(&mut params);
        assert_eq!(params.value(w).item(), 1.0);
    }

    #[test]
    fn handles_params_added_after_first_step() {
        let mut params = Params::new();
        let a = params.add("a", Tensor::scalar(1.0));
        let mut opt = Adam::new(0.1);
        params.accumulate_grad(a, &Tensor::scalar(1.0));
        opt.step(&mut params);
        params.zero_grad();
        let b = params.add("b", Tensor::scalar(1.0));
        params.accumulate_grad(b, &Tensor::scalar(1.0));
        opt.step(&mut params); // must not panic; state is keyed by ParamId
        assert!(params.value(b).item() < 1.0);
    }

    #[test]
    fn dense_equivalent_matches_reference_bits() {
        // Sparse gradients through the DenseEquivalent optimizer must equal
        // the legacy dense oracle bit for bit, across steps with different
        // touched-row sets.
        let mut params = Params::new();
        let w = params.add("w", Tensor::from_fn(5, 3, |i, j| (i * 3 + j) as f64 * 0.1));
        let mut opt = Adam::with_config(0.05, 0.9, 0.999, 1e-8, 0.01)
            .with_grad_mode(GradMode::DenseEquivalent);

        let mut oracle_w = params.value(w).clone();
        let mut m = Tensor::zeros(5, 3);
        let mut v = Tensor::zeros(5, 3);
        let cfg = reference::AdamCfg {
            lr: 0.05,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.01,
            decoupled_decay: false,
        };

        let batches: [&[usize]; 3] = [&[0, 2, 2], &[4], &[1, 3, 0]];
        for (step, idx) in batches.iter().enumerate() {
            let src = Tensor::from_fn(idx.len(), 3, |i, j| ((step + i + j) as f64).sin());
            let sparse = RowSparse::from_scatter(5, 3, idx, &src);
            params.accumulate_grad_rows(w, sparse.clone());
            opt.step(&mut params);
            params.zero_grad();

            reference::adam_step(
                &mut oracle_w,
                &sparse.to_dense(),
                &mut m,
                &mut v,
                step as u64 + 1,
                &cfg,
            );
        }
        assert_eq!(params.value(w).data(), oracle_w.data());
    }

    #[test]
    fn lazy_catchup_matches_documented_semantics() {
        // Touch row 0, leave it idle for two steps (while row 1 trains),
        // then touch it again: its moments must be decayed by β^2 before
        // the fourth update. The expected trajectory is simulated with
        // scalar arithmetic implementing exactly the documented formulas.
        let (lr, b1, b2, eps) = (0.1, 0.9, 0.999, 1e-8);
        let mut params = Params::new();
        let w = params.add("w", Tensor::from_rows(&[&[1.0], &[1.0]]));
        let mut opt = Adam::with_config(lr, b1, b2, eps, 0.0);

        let touches: [(usize, f64); 4] = [(0, 0.5), (1, -0.3), (1, 0.2), (0, 0.7)];
        for &(row, gval) in &touches {
            let sparse = RowSparse::from_scatter(2, 1, &[row], &Tensor::scalar(gval));
            params.accumulate_grad_rows(w, sparse);
            opt.step(&mut params);
            params.zero_grad();
        }

        // Scalar simulation for row 0 (touched at t = 1 and t = 4).
        let (mut wv, mut m, mut v) = (1.0f64, 0.0f64, 0.0f64);
        let mut upd = |t: i32, idle: i32, g: f64| {
            m *= b1.powi(idle);
            v *= b2.powi(idle);
            m = b1 * m + (1.0 - b1) * g;
            v = b2 * v + (1.0 - b2) * g * g;
            let bc1 = 1.0 - b1.powi(t);
            let bc2 = 1.0 - b2.powi(t);
            wv -= lr * bc2.sqrt() / bc1 * m / (v.sqrt() + eps * bc2.sqrt());
        };
        upd(1, 0, 0.5);
        upd(4, 2, 0.7);
        assert!((params.value(w).get(0, 0) - wv).abs() < 1e-15);
    }

    #[test]
    fn mixed_sparse_then_dense_grad_trains() {
        // A parameter can see sparse gradients on one step and dense on the
        // next (the DT loss shape); both paths share per-row stamps.
        let mut params = Params::new();
        let w = params.add("w", Tensor::from_fn(4, 2, |i, j| (i + j) as f64));
        let mut opt = Adam::new(0.1);

        let sparse = RowSparse::from_scatter(4, 2, &[1], &Tensor::row_vec(&[1.0, 1.0]));
        params.accumulate_grad_rows(w, sparse);
        opt.step(&mut params);
        params.zero_grad();

        params.accumulate_grad(w, &Tensor::ones(4, 2));
        opt.step(&mut params); // must not panic on stale stamps
        params.zero_grad();
        assert!(params.all_finite());
        assert!(params.value(w).get(0, 0) < 0.0 + 1e-9);
    }
}
