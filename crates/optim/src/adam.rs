//! Adam and AdamW.

use dt_autograd::Params;
use dt_tensor::Tensor;

use crate::Optimizer;

struct Moments {
    m: Vec<Tensor>,
    v: Vec<Tensor>,
    t: u64,
}

impl Moments {
    fn ensure(&mut self, params: &Params) {
        let n = params.len();
        for id in params.ids().skip(self.m.len()) {
            let val = params.value(id);
            self.m.push(Tensor::zeros(val.rows(), val.cols()));
            self.v.push(Tensor::zeros(val.rows(), val.cols()));
        }
        debug_assert_eq!(self.m.len(), n);
    }
}

/// Adam (Kingma & Ba, 2015) — the optimizer the paper uses for all methods.
///
/// `decoupled_decay = false` gives classic Adam with L2 regularisation folded
/// into the gradient; `true` gives AdamW (decay applied directly to the
/// weights).
pub struct Adam {
    lr: f64,
    beta1: f64,
    beta2: f64,
    eps: f64,
    weight_decay: f64,
    decoupled_decay: bool,
    state: Moments,
}

impl Adam {
    /// Adam with standard betas `(0.9, 0.999)` and `eps = 1e-8`.
    #[must_use]
    pub fn new(lr: f64) -> Self {
        Self::with_config(lr, 0.9, 0.999, 1e-8, 0.0)
    }

    /// Fully configured classic Adam.
    ///
    /// # Panics
    /// Panics on out-of-range hyper-parameters.
    #[must_use]
    pub fn with_config(lr: f64, beta1: f64, beta2: f64, eps: f64, weight_decay: f64) -> Self {
        assert!(lr > 0.0, "Adam: lr must be positive, got {lr}");
        assert!((0.0..1.0).contains(&beta1), "Adam: beta1 out of range");
        assert!((0.0..1.0).contains(&beta2), "Adam: beta2 out of range");
        assert!(eps > 0.0, "Adam: eps must be positive");
        assert!(weight_decay >= 0.0, "Adam: negative weight_decay");
        Self {
            lr,
            beta1,
            beta2,
            eps,
            weight_decay,
            decoupled_decay: false,
            state: Moments {
                m: Vec::new(),
                v: Vec::new(),
                t: 0,
            },
        }
    }
}

/// AdamW: Adam with decoupled weight decay.
pub struct AdamW(Adam);

impl AdamW {
    /// AdamW with standard betas and the given decay.
    #[must_use]
    pub fn new(lr: f64, weight_decay: f64) -> Self {
        let mut inner = Adam::with_config(lr, 0.9, 0.999, 1e-8, weight_decay);
        inner.decoupled_decay = true;
        Self(inner)
    }
}

impl Optimizer for AdamW {
    fn step(&mut self, params: &mut Params) {
        self.0.step(params);
    }
    fn learning_rate(&self) -> f64 {
        self.0.learning_rate()
    }
    fn set_learning_rate(&mut self, lr: f64) {
        self.0.set_learning_rate(lr);
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut Params) {
        self.state.ensure(params);
        self.state.t += 1;
        let t = self.state.t as f64;
        let bc1 = 1.0 - self.beta1.powf(t);
        let bc2 = 1.0 - self.beta2.powf(t);

        let ids: Vec<_> = params.ids().collect();
        for (k, id) in ids.into_iter().enumerate() {
            let mut g = params.grad(id).clone();
            if self.weight_decay > 0.0 && !self.decoupled_decay {
                g.axpy(self.weight_decay, params.value(id));
            }

            let m = &mut self.state.m[k];
            m.scale_inplace(self.beta1);
            m.axpy(1.0 - self.beta1, &g);

            let v = &mut self.state.v[k];
            v.scale_inplace(self.beta2);
            let g_sq = g.map(|x| x * x);
            v.axpy(1.0 - self.beta2, &g_sq);

            let lr = self.lr;
            let eps = self.eps;
            let update = m.zip_map(v, |mv, vv| {
                let m_hat = mv / bc1;
                let v_hat = vv / bc2;
                lr * m_hat / (v_hat.sqrt() + eps)
            });

            if self.weight_decay > 0.0 && self.decoupled_decay {
                let decay = self.lr * self.weight_decay;
                let w = params.value_mut(id);
                w.scale_inplace(1.0 - decay);
            }
            let w = params.value_mut(id);
            w.axpy(-1.0, &update);
        }
    }

    fn learning_rate(&self) -> f64 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f64) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dt_autograd::Graph;

    #[test]
    fn converges_on_rosenbrock_like_quadratic() {
        let mut params = Params::new();
        let w = params.add("w", Tensor::row_vec(&[3.0, -2.0]));
        let target = Tensor::row_vec(&[1.0, 1.0]);
        let mut opt = Adam::new(0.05);
        for _ in 0..2000 {
            let mut g = Graph::new();
            let wv = g.param(&params, w);
            let tv = g.constant(target.clone());
            let loss = g.mse(wv, tv);
            g.backward(loss, &mut params);
            opt.step(&mut params);
            params.zero_grad();
        }
        assert!(params.value(w).sub(&target).frob_sq() < 1e-8);
    }

    #[test]
    fn first_step_size_is_lr() {
        // With bias correction, the very first Adam update has magnitude ≈ lr.
        let mut params = Params::new();
        let w = params.add("w", Tensor::scalar(10.0));
        params.accumulate_grad(w, &Tensor::scalar(123.0));
        let mut opt = Adam::new(0.1);
        opt.step(&mut params);
        assert!((params.value(w).item() - (10.0 - 0.1)).abs() < 1e-6);
    }

    #[test]
    fn adamw_decays_even_without_gradient() {
        let mut params = Params::new();
        let w = params.add("w", Tensor::scalar(1.0));
        let mut opt = AdamW::new(0.01, 0.1);
        opt.step(&mut params);
        assert!(params.value(w).item() < 1.0);
    }

    #[test]
    fn handles_params_added_after_first_step() {
        let mut params = Params::new();
        let a = params.add("a", Tensor::scalar(1.0));
        let mut opt = Adam::new(0.1);
        params.accumulate_grad(a, &Tensor::scalar(1.0));
        opt.step(&mut params);
        params.zero_grad();
        let b = params.add("b", Tensor::scalar(1.0));
        params.accumulate_grad(b, &Tensor::scalar(1.0));
        opt.step(&mut params); // must not panic
        assert!(params.value(b).item() < 1.0);
    }
}
