//! Early stopping on a validation metric.

/// Tracks a validation metric and signals when training should stop.
///
/// `patience` is the number of consecutive non-improving evaluations
/// tolerated before stopping; `min_delta` is the minimum improvement that
/// counts. Works for metrics where **lower is better** (losses); negate the
/// metric for AUC-style scores.
#[derive(Debug, Clone)]
pub struct EarlyStopping {
    patience: usize,
    min_delta: f64,
    best: f64,
    best_epoch: usize,
    bad_streak: usize,
    epoch: usize,
}

impl EarlyStopping {
    /// A fresh tracker.
    #[must_use]
    pub fn new(patience: usize, min_delta: f64) -> Self {
        Self {
            patience,
            min_delta,
            best: f64::INFINITY,
            best_epoch: 0,
            bad_streak: 0,
            epoch: 0,
        }
    }

    /// Records one validation value; returns `true` when training should
    /// stop. Non-finite values count as non-improvements.
    pub fn update(&mut self, value: f64) -> bool {
        let improved = value.is_finite() && value < self.best - self.min_delta;
        if improved {
            self.best = value;
            self.best_epoch = self.epoch;
            self.bad_streak = 0;
        } else {
            self.bad_streak += 1;
        }
        self.epoch += 1;
        self.bad_streak > self.patience
    }

    /// Best value seen so far.
    #[must_use]
    pub fn best(&self) -> f64 {
        self.best
    }

    /// Epoch index (0-based) at which the best value occurred.
    #[must_use]
    pub fn best_epoch(&self) -> usize {
        self.best_epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stops_after_patience_exceeded() {
        let mut es = EarlyStopping::new(2, 0.0);
        assert!(!es.update(1.0));
        assert!(!es.update(0.9));
        assert!(!es.update(0.95)); // bad 1
        assert!(!es.update(0.95)); // bad 2
        assert!(es.update(0.95)); // bad 3 > patience
        assert_eq!(es.best(), 0.9);
        assert_eq!(es.best_epoch(), 1);
    }

    #[test]
    fn min_delta_requires_meaningful_improvement() {
        let mut es = EarlyStopping::new(0, 0.1);
        assert!(!es.update(1.0));
        // 0.95 improves by less than min_delta → counts as bad, stops.
        assert!(es.update(0.95));
    }

    #[test]
    fn nan_counts_as_non_improvement() {
        let mut es = EarlyStopping::new(0, 0.0);
        assert!(!es.update(1.0));
        assert!(es.update(f64::NAN));
    }
}
