//! # dt-optim
//!
//! First-order optimizers and training-loop utilities for the `disrec`
//! workspace: SGD (with momentum), Adagrad, Adam/AdamW, learning-rate
//! schedules, global-norm gradient clipping and early stopping.
//!
//! All optimizers implement the [`Optimizer`] trait and operate on a
//! [`dt_autograd::Params`] store: the training loop accumulates gradients
//! via `Graph::backward`, optionally clips them, calls [`Optimizer::step`],
//! then [`dt_autograd::Params::zero_grad`].
//!
//! ## Example
//!
//! ```
//! use dt_autograd::{Graph, Params};
//! use dt_optim::{Adam, Optimizer};
//! use dt_tensor::Tensor;
//!
//! let mut params = Params::new();
//! let w = params.add("w", Tensor::scalar(5.0));
//! let mut opt = Adam::new(0.5);
//!
//! for _ in 0..200 {
//!     let mut g = Graph::new();
//!     let wv = g.param(&params, w);
//!     let loss0 = g.sqr(wv); // minimise w²
//!     let loss = g.sum(loss0);
//!     g.backward(loss, &mut params);
//!     opt.step(&mut params);
//!     params.zero_grad();
//! }
//! assert!(params.value(w).item().abs() < 1e-3);
//! ```

#![forbid(unsafe_code)]

mod adagrad;
mod adam;
mod clip;
mod early_stop;
mod schedule;
mod sgd;

pub use adagrad::Adagrad;
pub use adam::{Adam, AdamW};
pub use clip::clip_grad_norm;
pub use early_stop::EarlyStopping;
pub use schedule::{ConstantLr, CosineLr, ExponentialDecay, LrSchedule, StepDecay};
pub use sgd::Sgd;

use dt_autograd::Params;

/// A first-order optimizer over a [`Params`] store.
pub trait Optimizer {
    /// Applies one update using the gradients currently accumulated in
    /// `params`. Does not zero the gradients.
    fn step(&mut self, params: &mut Params);

    /// The current base learning rate.
    fn learning_rate(&self) -> f64;

    /// Overrides the base learning rate (used by [`LrSchedule`] drivers).
    fn set_learning_rate(&mut self, lr: f64);
}
