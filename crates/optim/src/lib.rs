//! # dt-optim
//!
//! First-order optimizers and training-loop utilities for the `disrec`
//! workspace: SGD (with momentum), Adagrad, Adam/AdamW, learning-rate
//! schedules, global-norm gradient clipping and early stopping.
//!
//! All optimizers implement the [`Optimizer`] trait and operate on a
//! [`dt_autograd::Params`] store: the training loop accumulates gradients
//! via `Graph::backward`, optionally clips them, calls [`Optimizer::step`],
//! then [`dt_autograd::Params::zero_grad`].
//!
//! ## Sparse-aware updates
//!
//! Gradients arrive as [`dt_tensor::Grad`] — row-sparse for embedding-table
//! parameters touched through gathers, dense for full-table losses. Every
//! optimizer here consumes both without densifying: in the default
//! [`GradMode::Lazy`] a step over a row-sparse gradient costs
//! `O(touched_rows × cols)`, catching idle rows' moments up with a
//! `β^Δt` decay factor the next time they are touched (see DESIGN.md §10
//! for the exact semantics and the documented approximations). The
//! [`GradMode::DenseEquivalent`] mode instead densifies and delegates to
//! the legacy formulas kept verbatim in [`reference`], and is tested to be
//! bit-identical to the pre-sparse optimizer — the oracle for the lazy
//! path's equivalence tests.
//!
//! Optimizer state (moments, velocity, squared-gradient accumulators) is
//! keyed by [`dt_autograd::ParamId`], not by iteration position, so
//! interleaving parameter registration with steps cannot mis-associate
//! state.
//!
//! ## Example
//!
//! ```
//! use dt_autograd::{Graph, Params};
//! use dt_optim::{Adam, Optimizer};
//! use dt_tensor::Tensor;
//!
//! let mut params = Params::new();
//! let w = params.add("w", Tensor::scalar(5.0));
//! let mut opt = Adam::new(0.5);
//!
//! for _ in 0..200 {
//!     let mut g = Graph::new();
//!     let wv = g.param(&params, w);
//!     let loss0 = g.sqr(wv); // minimise w²
//!     let loss = g.sum(loss0);
//!     g.backward(loss, &mut params);
//!     opt.step(&mut params);
//!     params.zero_grad();
//! }
//! assert!(params.value(w).item().abs() < 1e-3);
//! ```

#![forbid(unsafe_code)]

mod adagrad;
mod adam;
mod clip;
mod early_stop;
pub mod reference;
mod schedule;
mod sgd;

pub use adagrad::Adagrad;
pub use adam::{Adam, AdamW};
pub use clip::clip_grad_norm;
pub use early_stop::EarlyStopping;
pub use schedule::{ConstantLr, CosineLr, ExponentialDecay, LrSchedule, StepDecay};
pub use sgd::Sgd;

use dt_autograd::Params;

/// How an optimizer consumes row-sparse gradients.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum GradMode {
    /// Touched-rows-only updates: a row-sparse gradient updates just its
    /// touched rows, whose moments are first caught up with a `β^Δt`
    /// decay for the `Δt` steps the row sat idle. `O(touched × cols)` per
    /// step. Dense gradients still update every row.
    #[default]
    Lazy,
    /// Densify every gradient and delegate to the legacy dense formulas in
    /// [`reference`] — bit-identical to the pre-sparse optimizers. Used by
    /// the equivalence tests and the dense arm of the training-step
    /// benchmark; `O(rows × cols)` per step.
    DenseEquivalent,
}

/// `beta^delta` with an integer exponent, for lazy moment catch-up.
/// Deterministic (no `powf` on the hot path) and saturating: a `delta`
/// beyond `i32::MAX` steps underflows to the same limit value.
pub(crate) fn catchup_pow(beta: f64, delta: u64) -> f64 {
    beta.powi(i32::try_from(delta).unwrap_or(i32::MAX))
}

/// A first-order optimizer over a [`Params`] store.
pub trait Optimizer {
    /// Applies one update using the gradients currently accumulated in
    /// `params`. Does not zero the gradients.
    fn step(&mut self, params: &mut Params);

    /// The current base learning rate.
    fn learning_rate(&self) -> f64;

    /// Overrides the base learning rate (used by [`LrSchedule`] drivers).
    fn set_learning_rate(&mut self, lr: f64);
}
