//! Stochastic gradient descent with optional momentum and weight decay,
//! sparse-aware.
//!
//! Plain SGD (`momentum = 0`, `weight_decay = 0`) over a row-sparse
//! gradient is *exactly* the dense update — untouched rows have a zero
//! gradient and would not move anyway. With momentum, the lazy path applies
//! a `µ^Δt` velocity catch-up to rows returning from idleness, and with
//! weight decay the `wd·w` term only acts on touched rows — both documented
//! approximations (DESIGN.md §10). [`GradMode::DenseEquivalent`] delegates
//! to [`crate::reference::sgd_step`] for the legacy full-table semantics.

use std::collections::HashMap;

use dt_autograd::{ParamId, Params};
use dt_tensor::{Grad, Tensor};

use crate::{catchup_pow, reference, GradMode, Optimizer};

/// Per-parameter momentum state with per-row step stamps.
struct State {
    velocity: Tensor,
    last: Vec<u64>,
}

/// SGD: `w ← w − lr · (g + weight_decay · w)`, with optional classical
/// momentum `v ← µ·v + g`.
pub struct Sgd {
    lr: f64,
    momentum: f64,
    weight_decay: f64,
    mode: GradMode,
    t: u64,
    state: HashMap<ParamId, State>,
}

impl Sgd {
    /// Plain SGD with the given learning rate.
    #[must_use]
    pub fn new(lr: f64) -> Self {
        Self::with_config(lr, 0.0, 0.0)
    }

    /// SGD with momentum `µ` and L2 weight decay.
    ///
    /// # Panics
    /// Panics on negative hyper-parameters or `momentum ≥ 1`.
    #[must_use]
    pub fn with_config(lr: f64, momentum: f64, weight_decay: f64) -> Self {
        assert!(lr > 0.0, "Sgd: lr must be positive, got {lr}");
        assert!(
            (0.0..1.0).contains(&momentum),
            "Sgd: momentum must be in [0,1), got {momentum}"
        );
        assert!(weight_decay >= 0.0, "Sgd: negative weight_decay");
        Self {
            lr,
            momentum,
            weight_decay,
            mode: GradMode::Lazy,
            t: 0,
            state: HashMap::new(),
        }
    }

    /// Selects how row-sparse gradients are consumed (default
    /// [`GradMode::Lazy`]).
    #[must_use]
    pub fn with_grad_mode(mut self, mode: GradMode) -> Self {
        self.mode = mode;
        self
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut Params) {
        self.t += 1;
        let t = self.t;
        let (lr, mu, wd) = (self.lr, self.momentum, self.weight_decay);

        let ids: Vec<ParamId> = params.ids().collect();
        for id in ids {
            if self.mode == GradMode::DenseEquivalent || params.grad(id).is_dense() {
                let g = params.grad(id).to_dense();
                let velocity = if mu > 0.0 {
                    let (rows, cols) = (g.rows(), g.cols());
                    let st = self.state.entry(id).or_insert_with(|| State {
                        velocity: Tensor::zeros(rows, cols),
                        last: vec![t - 1; rows],
                    });
                    // Lazy runs may have left rows with stale velocity
                    // decay; catch them up before the full-table update.
                    if self.mode == GradMode::Lazy {
                        for (r, stamp) in st.last.iter_mut().enumerate() {
                            let idle = t - 1 - *stamp;
                            if idle > 0 {
                                let d = catchup_pow(mu, idle);
                                for x in st.velocity.row_mut(r).iter_mut() {
                                    *x *= d;
                                }
                            }
                            *stamp = t;
                        }
                    }
                    Some(&mut st.velocity)
                } else {
                    None
                };
                reference::sgd_step(params.value_mut(id), &g, velocity, lr, mu, wd);
                continue;
            }

            // Lazy row-sparse path.
            let (rows, cols) = {
                let val = params.value(id);
                (val.rows(), val.cols())
            };
            if mu > 0.0 {
                let st = self.state.entry(id).or_insert_with(|| State {
                    velocity: Tensor::zeros(rows, cols),
                    last: vec![t - 1; rows],
                });
                let (g, w) = params.grad_and_value_mut(id);
                if let Grad::RowSparse(s) = g {
                    for (k, &r) in s.indices().iter().enumerate() {
                        let idle = t - 1 - st.last[r];
                        if idle > 0 {
                            let d = catchup_pow(mu, idle);
                            for x in st.velocity.row_mut(r).iter_mut() {
                                *x *= d;
                            }
                        }
                        st.last[r] = t;
                        let grow = s.block().row(k);
                        let wrow = w.row_mut(r);
                        let vrow = st.velocity.row_mut(r);
                        for j in 0..cols {
                            let gi = grow[j] + wd * wrow[j];
                            vrow[j] = mu * vrow[j] + gi;
                            wrow[j] -= lr * vrow[j];
                        }
                    }
                }
            } else {
                let (g, w) = params.grad_and_value_mut(id);
                if let Grad::RowSparse(s) = g {
                    for (k, &r) in s.indices().iter().enumerate() {
                        let grow = s.block().row(k);
                        let wrow = w.row_mut(r);
                        for j in 0..cols {
                            wrow[j] -= lr * (grow[j] + wd * wrow[j]);
                        }
                    }
                }
            }
        }
    }

    fn learning_rate(&self) -> f64 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f64) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dt_autograd::Graph;
    use dt_tensor::RowSparse;

    fn quadratic_step(params: &mut Params, w: dt_autograd::ParamId) {
        let mut g = Graph::new();
        let wv = g.param(params, w);
        let sq = g.sqr(wv);
        let loss = g.sum(sq);
        g.backward(loss, params);
    }

    #[test]
    fn converges_on_quadratic() {
        let mut params = Params::new();
        let w = params.add("w", Tensor::scalar(4.0));
        let mut opt = Sgd::new(0.1);
        for _ in 0..100 {
            quadratic_step(&mut params, w);
            opt.step(&mut params);
            params.zero_grad();
        }
        assert!(params.value(w).item().abs() < 1e-6);
    }

    #[test]
    fn momentum_accelerates() {
        let run = |momentum: f64| {
            let mut params = Params::new();
            let w = params.add("w", Tensor::scalar(4.0));
            let mut opt = Sgd::with_config(0.02, momentum, 0.0);
            for _ in 0..50 {
                quadratic_step(&mut params, w);
                opt.step(&mut params);
                params.zero_grad();
            }
            params.value(w).item().abs()
        };
        assert!(run(0.9) < run(0.0));
    }

    #[test]
    fn weight_decay_shrinks_weights_with_dense_zero_gradient() {
        let mut params = Params::new();
        let w = params.add("w", Tensor::scalar(1.0));
        let mut opt = Sgd::with_config(0.1, 0.0, 0.5);
        // A dense zero gradient: only decay acts, on every row.
        params.accumulate_grad(w, &Tensor::zeros(1, 1));
        opt.step(&mut params);
        assert!((params.value(w).item() - (1.0 - 0.1 * 0.5)).abs() < 1e-12);
    }

    #[test]
    fn plain_sparse_step_matches_dense_bits() {
        // momentum = 0, weight_decay = 0: the lazy sparse path must equal
        // the dense reference exactly, bit for bit.
        let src = Tensor::from_rows(&[&[0.3, -0.7], &[0.11, 0.013]]);
        let sparse = RowSparse::from_scatter(4, 2, &[2, 0], &src);

        let mut params = Params::new();
        let w = params.add("w", Tensor::from_fn(4, 2, |i, j| (i + 2 * j) as f64 * 0.37));
        let mut oracle_w = params.value(w).clone();

        params.accumulate_grad_rows(w, sparse.clone());
        let mut opt = Sgd::new(0.05);
        opt.step(&mut params);

        reference::sgd_step(&mut oracle_w, &sparse.to_dense(), None, 0.05, 0.0, 0.0);
        assert_eq!(params.value(w).data(), oracle_w.data());
    }

    #[test]
    fn momentum_velocity_catches_up_after_idle_rows() {
        // Row 0 trains at t=1, idles at t=2, returns at t=3: its velocity
        // must be decayed by µ² before the third update.
        let (lr, mu) = (0.1, 0.5);
        let mut params = Params::new();
        let w = params.add("w", Tensor::from_rows(&[&[0.0], &[0.0]]));
        let mut opt = Sgd::with_config(lr, mu, 0.0);

        let touches: [(usize, f64); 3] = [(0, 1.0), (1, 1.0), (0, 1.0)];
        for &(row, gval) in &touches {
            let sparse = RowSparse::from_scatter(2, 1, &[row], &Tensor::scalar(gval));
            params.accumulate_grad_rows(w, sparse);
            opt.step(&mut params);
            params.zero_grad();
        }
        // Row 0: v1 = 1, w -= lr·1; idle 1 step: v ← v·µ^1 = 0.5;
        // v3 = µ·0.5 + 1 = 1.25, w -= lr·1.25.
        let expected = -(lr * 1.0 + lr * 1.25);
        assert!((params.value(w).get(0, 0) - expected).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "lr must be positive")]
    fn zero_lr_panics() {
        let _ = Sgd::new(0.0);
    }
}
