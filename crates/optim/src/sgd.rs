//! Stochastic gradient descent with optional momentum and weight decay.

use dt_autograd::Params;
use dt_tensor::Tensor;

use crate::Optimizer;

/// SGD: `w ← w − lr · (g + weight_decay · w)`, with optional classical
/// momentum `v ← µ·v + g`.
pub struct Sgd {
    lr: f64,
    momentum: f64,
    weight_decay: f64,
    velocity: Vec<Tensor>,
}

impl Sgd {
    /// Plain SGD with the given learning rate.
    #[must_use]
    pub fn new(lr: f64) -> Self {
        Self::with_config(lr, 0.0, 0.0)
    }

    /// SGD with momentum `µ` and L2 weight decay.
    ///
    /// # Panics
    /// Panics on negative hyper-parameters or `momentum ≥ 1`.
    #[must_use]
    pub fn with_config(lr: f64, momentum: f64, weight_decay: f64) -> Self {
        assert!(lr > 0.0, "Sgd: lr must be positive, got {lr}");
        assert!(
            (0.0..1.0).contains(&momentum),
            "Sgd: momentum must be in [0,1), got {momentum}"
        );
        assert!(weight_decay >= 0.0, "Sgd: negative weight_decay");
        Self {
            lr,
            momentum,
            weight_decay,
            velocity: Vec::new(),
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut Params) {
        let ids: Vec<_> = params.ids().collect();
        if self.momentum > 0.0 && self.velocity.len() < ids.len() {
            for id in ids.iter().skip(self.velocity.len()) {
                let v = params.value(*id);
                self.velocity.push(Tensor::zeros(v.rows(), v.cols()));
            }
        }
        for (k, id) in ids.into_iter().enumerate() {
            let mut g = params.grad(id).clone();
            if self.weight_decay > 0.0 {
                g.axpy(self.weight_decay, params.value(id));
            }
            let update = if self.momentum > 0.0 {
                let v = &mut self.velocity[k];
                v.scale_inplace(self.momentum);
                v.add_assign(&g);
                v.clone()
            } else {
                g
            };
            params.value_mut(id).axpy(-self.lr, &update);
        }
    }

    fn learning_rate(&self) -> f64 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f64) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dt_autograd::Graph;

    fn quadratic_step(params: &mut Params, w: dt_autograd::ParamId) {
        let mut g = Graph::new();
        let wv = g.param(params, w);
        let sq = g.sqr(wv);
        let loss = g.sum(sq);
        g.backward(loss, params);
    }

    #[test]
    fn converges_on_quadratic() {
        let mut params = Params::new();
        let w = params.add("w", Tensor::scalar(4.0));
        let mut opt = Sgd::new(0.1);
        for _ in 0..100 {
            quadratic_step(&mut params, w);
            opt.step(&mut params);
            params.zero_grad();
        }
        assert!(params.value(w).item().abs() < 1e-6);
    }

    #[test]
    fn momentum_accelerates() {
        let run = |momentum: f64| {
            let mut params = Params::new();
            let w = params.add("w", Tensor::scalar(4.0));
            let mut opt = Sgd::with_config(0.02, momentum, 0.0);
            for _ in 0..50 {
                quadratic_step(&mut params, w);
                opt.step(&mut params);
                params.zero_grad();
            }
            params.value(w).item().abs()
        };
        assert!(run(0.9) < run(0.0));
    }

    #[test]
    fn weight_decay_shrinks_weights_without_gradient() {
        let mut params = Params::new();
        let w = params.add("w", Tensor::scalar(1.0));
        let mut opt = Sgd::with_config(0.1, 0.0, 0.5);
        // No backward pass: gradient is zero, only decay acts.
        opt.step(&mut params);
        assert!((params.value(w).item() - (1.0 - 0.1 * 0.5)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "lr must be positive")]
    fn zero_lr_panics() {
        let _ = Sgd::new(0.0);
    }
}
