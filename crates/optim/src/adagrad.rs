//! Adagrad, sparse-aware.
//!
//! Adagrad is the one optimizer whose lazy sparse path is *exactly*
//! dense-equivalent: an untouched row has a zero gradient, so its squared
//! accumulator and weights would not change under the dense formulas either.
//! No per-row step stamps or catch-up factors are needed — the sparse step
//! simply applies the dense per-element update to the touched rows.

use std::collections::HashMap;

use dt_autograd::{ParamId, Params};
use dt_tensor::{Grad, Tensor};

use crate::{reference, GradMode, Optimizer};

/// Adagrad (Duchi et al., 2011): per-coordinate learning rates that decay
/// with the accumulated squared gradient — a good fit for the sparse,
/// long-tailed updates of embedding tables.
pub struct Adagrad {
    lr: f64,
    eps: f64,
    mode: GradMode,
    accum: HashMap<ParamId, Tensor>,
}

impl Adagrad {
    /// Adagrad with `eps = 1e-10`.
    ///
    /// # Panics
    /// Panics on a non-positive learning rate.
    #[must_use]
    pub fn new(lr: f64) -> Self {
        assert!(lr > 0.0, "Adagrad: lr must be positive, got {lr}");
        Self {
            lr,
            eps: 1e-10,
            mode: GradMode::Lazy,
            accum: HashMap::new(),
        }
    }

    /// Selects how row-sparse gradients are consumed (default
    /// [`GradMode::Lazy`]).
    #[must_use]
    pub fn with_grad_mode(mut self, mode: GradMode) -> Self {
        self.mode = mode;
        self
    }
}

impl Optimizer for Adagrad {
    fn step(&mut self, params: &mut Params) {
        let (lr, eps) = (self.lr, self.eps);
        let ids: Vec<ParamId> = params.ids().collect();
        for id in ids {
            let (rows, cols) = {
                let val = params.value(id);
                (val.rows(), val.cols())
            };
            let acc = self
                .accum
                .entry(id)
                .or_insert_with(|| Tensor::zeros(rows, cols));

            if self.mode == GradMode::DenseEquivalent || params.grad(id).is_dense() {
                let g = params.grad(id).to_dense();
                reference::adagrad_step(params.value_mut(id), &g, acc, lr, eps);
                continue;
            }

            let (g, w) = params.grad_and_value_mut(id);
            if let Grad::RowSparse(s) = g {
                for (k, &r) in s.indices().iter().enumerate() {
                    let grow = s.block().row(k);
                    let wrow = w.row_mut(r);
                    let arow = acc.row_mut(r);
                    for j in 0..cols {
                        let gi = grow[j];
                        arow[j] += gi * gi;
                        wrow[j] -= lr * gi / (arow[j].sqrt() + eps);
                    }
                }
            }
        }
    }

    fn learning_rate(&self) -> f64 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f64) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dt_autograd::Graph;
    use dt_tensor::RowSparse;

    #[test]
    fn converges_on_quadratic() {
        let mut params = Params::new();
        let w = params.add("w", Tensor::scalar(4.0));
        let mut opt = Adagrad::new(1.0);
        for _ in 0..500 {
            let mut g = Graph::new();
            let wv = g.param(&params, w);
            let sq = g.sqr(wv);
            let loss = g.sum(sq);
            g.backward(loss, &mut params);
            opt.step(&mut params);
            params.zero_grad();
        }
        assert!(params.value(w).item().abs() < 1e-3);
    }

    #[test]
    fn step_sizes_shrink_over_time() {
        let mut params = Params::new();
        let w = params.add("w", Tensor::scalar(0.0));
        let mut opt = Adagrad::new(0.1);
        let mut prev = f64::INFINITY;
        for _ in 0..5 {
            params.accumulate_grad(w, &Tensor::scalar(1.0));
            let before = params.value(w).item();
            opt.step(&mut params);
            params.zero_grad();
            let delta = (params.value(w).item() - before).abs();
            assert!(delta < prev);
            prev = delta;
        }
    }

    #[test]
    fn sparse_steps_match_dense_reference_bits() {
        // Lazy Adagrad over sparse gradients is exactly dense-equivalent:
        // several steps with varying touched rows must reproduce the dense
        // oracle bit for bit.
        let mut params = Params::new();
        let w = params.add("w", Tensor::from_fn(6, 2, |i, j| (i * 2 + j) as f64 * 0.21));
        let mut opt = Adagrad::new(0.3);

        let mut oracle_w = params.value(w).clone();
        let mut oracle_acc = Tensor::zeros(6, 2);

        let batches: [&[usize]; 3] = [&[5, 1, 1], &[0], &[3, 5]];
        for (step, idx) in batches.iter().enumerate() {
            let src = Tensor::from_fn(idx.len(), 2, |i, j| ((step * 7 + i * 3 + j) as f64).cos());
            let sparse = RowSparse::from_scatter(6, 2, idx, &src);
            params.accumulate_grad_rows(w, sparse.clone());
            opt.step(&mut params);
            params.zero_grad();

            reference::adagrad_step(
                &mut oracle_w,
                &sparse.to_dense(),
                &mut oracle_acc,
                0.3,
                1e-10,
            );
        }
        assert_eq!(params.value(w).data(), oracle_w.data());
    }
}
