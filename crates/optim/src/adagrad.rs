//! Adagrad.

use dt_autograd::Params;
use dt_tensor::Tensor;

use crate::Optimizer;

/// Adagrad (Duchi et al., 2011): per-coordinate learning rates that decay
/// with the accumulated squared gradient — a good fit for the sparse,
/// long-tailed updates of embedding tables.
pub struct Adagrad {
    lr: f64,
    eps: f64,
    accum: Vec<Tensor>,
}

impl Adagrad {
    /// Adagrad with `eps = 1e-10`.
    ///
    /// # Panics
    /// Panics on a non-positive learning rate.
    #[must_use]
    pub fn new(lr: f64) -> Self {
        assert!(lr > 0.0, "Adagrad: lr must be positive, got {lr}");
        Self {
            lr,
            eps: 1e-10,
            accum: Vec::new(),
        }
    }
}

impl Optimizer for Adagrad {
    fn step(&mut self, params: &mut Params) {
        for id in params.ids().skip(self.accum.len()).collect::<Vec<_>>() {
            let v = params.value(id);
            self.accum.push(Tensor::zeros(v.rows(), v.cols()));
        }
        let ids: Vec<_> = params.ids().collect();
        for (k, id) in ids.into_iter().enumerate() {
            let g = params.grad(id).clone();
            let acc = &mut self.accum[k];
            let g_sq = g.map(|x| x * x);
            acc.add_assign(&g_sq);
            let lr = self.lr;
            let eps = self.eps;
            let update = g.zip_map(acc, |gv, av| lr * gv / (av.sqrt() + eps));
            params.value_mut(id).axpy(-1.0, &update);
        }
    }

    fn learning_rate(&self) -> f64 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f64) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dt_autograd::Graph;

    #[test]
    fn converges_on_quadratic() {
        let mut params = Params::new();
        let w = params.add("w", Tensor::scalar(4.0));
        let mut opt = Adagrad::new(1.0);
        for _ in 0..500 {
            let mut g = Graph::new();
            let wv = g.param(&params, w);
            let sq = g.sqr(wv);
            let loss = g.sum(sq);
            g.backward(loss, &mut params);
            opt.step(&mut params);
            params.zero_grad();
        }
        assert!(params.value(w).item().abs() < 1e-3);
    }

    #[test]
    fn step_sizes_shrink_over_time() {
        let mut params = Params::new();
        let w = params.add("w", Tensor::scalar(0.0));
        let mut opt = Adagrad::new(0.1);
        let mut prev = f64::INFINITY;
        for _ in 0..5 {
            params.accumulate_grad(w, &Tensor::scalar(1.0));
            let before = params.value(w).item();
            opt.step(&mut params);
            params.zero_grad();
            let delta = (params.value(w).item() - before).abs();
            assert!(delta < prev);
            prev = delta;
        }
    }
}
