//! Property-based equivalence tests: the sparse-aware optimizers against
//! the legacy dense formulas in `dt_optim::reference`.
//!
//! Three tiers of strictness, matching the documented semantics:
//!
//! * `DenseEquivalent` mode must be **bit-identical** to the dense oracle
//!   for any sequence of sparse gradients (Adam, the hardest case).
//! * Lazy Adagrad and plain lazy SGD are *exactly* dense-equivalent by
//!   construction, so they too must match bit for bit.
//! * Lazy Adam with every row touched each step (sparse gradients covering
//!   all rows) must match the oracle numerically — the folded bias
//!   correction is algebraically equal but rounds differently.

use dt_autograd::Params;
use dt_optim::{reference, Adagrad, Adam, AdamW, GradMode, Optimizer, Sgd};
use dt_tensor::{RowSparse, Tensor};
use proptest::prelude::*;

/// A sequence of sparse gradient batches for a `rows × cols` table:
/// per step, a non-empty list of (possibly duplicate) row indices and one
/// gradient row per index.
fn batches(rows: usize, cols: usize) -> impl Strategy<Value = Vec<(Vec<usize>, Tensor)>> {
    let batch = proptest::collection::vec(0..rows, 1..=rows).prop_flat_map(move |idx| {
        let n = idx.len();
        proptest::collection::vec(-2.0f64..2.0, n * cols)
            .prop_map(move |data| (idx.clone(), Tensor::from_vec(n, cols, data)))
    });
    proptest::collection::vec(batch, 1..6)
}

fn init_table(rows: usize, cols: usize) -> Tensor {
    Tensor::from_fn(rows, cols, |i, j| ((i * cols + j) as f64 * 0.7).sin())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn adam_dense_equivalent_is_bit_identical_to_oracle(
        seq in batches(5, 3),
        wd in prop_oneof![Just(0.0), Just(0.02)],
        decoupled in any::<bool>(),
    ) {
        let use_adamw = decoupled && wd > 0.0;
        let mut params = Params::new();
        let w = params.add("w", init_table(5, 3));
        let mut opt: Box<dyn Optimizer> = if use_adamw {
            Box::new(AdamW::new(0.05, wd).with_grad_mode(GradMode::DenseEquivalent))
        } else {
            Box::new(
                Adam::with_config(0.05, 0.9, 0.999, 1e-8, wd)
                    .with_grad_mode(GradMode::DenseEquivalent),
            )
        };

        let mut oracle_w = params.value(w).clone();
        let mut m = Tensor::zeros(5, 3);
        let mut v = Tensor::zeros(5, 3);
        let cfg = reference::AdamCfg {
            lr: 0.05,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: wd,
            decoupled_decay: use_adamw,
        };

        for (t, (idx, src)) in seq.iter().enumerate() {
            let sparse = RowSparse::from_scatter(5, 3, idx, src);
            params.accumulate_grad_rows(w, sparse.clone());
            opt.step(&mut params);
            params.zero_grad();
            reference::adam_step(&mut oracle_w, &sparse.to_dense(), &mut m, &mut v,
                                 t as u64 + 1, &cfg);
        }
        prop_assert_eq!(params.value(w).data(), oracle_w.data());
    }

    #[test]
    fn adagrad_lazy_is_bit_identical_to_oracle(seq in batches(6, 2)) {
        let mut params = Params::new();
        let w = params.add("w", init_table(6, 2));
        let mut opt = Adagrad::new(0.3);

        let mut oracle_w = params.value(w).clone();
        let mut acc = Tensor::zeros(6, 2);

        for (idx, src) in &seq {
            let sparse = RowSparse::from_scatter(6, 2, idx, src);
            params.accumulate_grad_rows(w, sparse.clone());
            opt.step(&mut params);
            params.zero_grad();
            reference::adagrad_step(&mut oracle_w, &sparse.to_dense(), &mut acc, 0.3, 1e-10);
        }
        prop_assert_eq!(params.value(w).data(), oracle_w.data());
    }

    #[test]
    fn plain_sgd_lazy_is_bit_identical_to_oracle(seq in batches(4, 3)) {
        let mut params = Params::new();
        let w = params.add("w", init_table(4, 3));
        let mut opt = Sgd::new(0.1);

        let mut oracle_w = params.value(w).clone();
        for (idx, src) in &seq {
            let sparse = RowSparse::from_scatter(4, 3, idx, src);
            params.accumulate_grad_rows(w, sparse.clone());
            opt.step(&mut params);
            params.zero_grad();
            reference::sgd_step(&mut oracle_w, &sparse.to_dense(), None, 0.1, 0.0, 0.0);
        }
        prop_assert_eq!(params.value(w).data(), oracle_w.data());
    }

    #[test]
    fn lazy_adam_matches_oracle_when_all_rows_touched(seq in batches(3, 2)) {
        // Sparse gradients that cover every row each step leave nothing to
        // be lazy about: the trajectories agree to rounding (the folded
        // bias correction evaluates the same algebra in a different order).
        let rows = 3;
        let mut params = Params::new();
        let w = params.add("w", init_table(rows, 2));
        let mut opt = Adam::new(0.05);

        let mut oracle_w = params.value(w).clone();
        let mut m = Tensor::zeros(rows, 2);
        let mut v = Tensor::zeros(rows, 2);
        let cfg = reference::AdamCfg {
            lr: 0.05,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            decoupled_decay: false,
        };

        for (t, (idx, src)) in seq.iter().enumerate() {
            // Extend every batch to touch all rows once more.
            let mut all_idx = idx.clone();
            all_idx.extend(0..rows);
            let pad = Tensor::from_fn(rows, 2, |i, j| ((t + i + j) as f64).cos());
            let full = src.concat_rows(&pad);
            let sparse = RowSparse::from_scatter(rows, 2, &all_idx, &full);
            params.accumulate_grad_rows(w, sparse.clone());
            opt.step(&mut params);
            params.zero_grad();
            reference::adam_step(&mut oracle_w, &sparse.to_dense(), &mut m, &mut v,
                                 t as u64 + 1, &cfg);
        }
        for (a, b) in params.value(w).data().iter().zip(oracle_w.data()) {
            prop_assert!((a - b).abs() < 1e-12, "lazy {a} vs oracle {b}");
        }
    }
}
